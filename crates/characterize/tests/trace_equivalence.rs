//! Record → replay equivalence and trace-DB durability, end to end.
//!
//! The trace subsystem's whole claim is *bitwise* fidelity: a launch trace
//! recorded once — under any configuration — must re-simulate to exactly
//! the measurement a live functional run would have produced, for every
//! clock/ECC configuration and repetition. These tests sweep that claim
//! across the full registry, and verify that a damaged trace store always
//! degrades to a clean functional re-run, never to a wrong answer.

use characterize::campaign::{Campaign, CampaignConfig};
use characterize::experiment::{
    measure_from_trace, measure_with_device_config, measure_with_device_config_recording,
    Measurement,
};
use characterize::GpuConfigKind;
use gpower::PowerError;
use std::path::{Path, PathBuf};
use workloads::registry;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpgpu-trace-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Field-by-field bitwise equality of two measurements (floats compared as
/// bit patterns — "close" is a bug here).
fn assert_bitwise_eq(a: &Measurement, b: &Measurement, what: &str) {
    let ra = &a.reading;
    let rb = &b.reading;
    assert_eq!(
        ra.active_runtime_s.to_bits(),
        rb.active_runtime_s.to_bits(),
        "{what}: active_runtime_s"
    );
    assert_eq!(
        ra.energy_j.to_bits(),
        rb.energy_j.to_bits(),
        "{what}: energy_j"
    );
    assert_eq!(
        ra.avg_power_w.to_bits(),
        rb.avg_power_w.to_bits(),
        "{what}: avg_power_w"
    );
    assert_eq!(
        ra.threshold_w.to_bits(),
        rb.threshold_w.to_bits(),
        "{what}: threshold_w"
    );
    assert_eq!(ra.idle_w.to_bits(), rb.idle_w.to_bits(), "{what}: idle_w");
    assert_eq!(ra.n_active_samples, rb.n_active_samples, "{what}: samples");
    assert_eq!(
        a.checksum.to_bits(),
        b.checksum.to_bits(),
        "{what}: checksum"
    );
    assert_eq!(a.items, b.items, "{what}: items");
    assert_eq!(a.counters, b.counters, "{what}: counters");
    assert_eq!(
        a.board_energy_j.to_bits(),
        b.board_energy_j.to_bits(),
        "{what}: board_energy_j"
    );
    assert_eq!(
        a.trace_end_s.to_bits(),
        b.trace_end_s.to_bits(),
        "{what}: trace_end_s"
    );
    assert_eq!(
        a.kernel_time_s.to_bits(),
        b.kernel_time_s.to_bits(),
        "{what}: kernel_time_s"
    );
    assert_eq!(
        a.sampled_energy_j.len(),
        b.sampled_energy_j.len(),
        "{what}: sampled_energy_j length"
    );
    for (i, (x, y)) in a
        .sampled_energy_j
        .iter()
        .zip(&b.sampled_energy_j)
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: sampled_energy_j[{i}]");
    }
}

fn assert_result_bitwise_eq(
    a: &Result<Measurement, PowerError>,
    b: &Result<Measurement, PowerError>,
    what: &str,
) {
    match (a, b) {
        (Ok(ma), Ok(mb)) => assert_bitwise_eq(ma, mb, what),
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{what}: errors differ"),
        _ => panic!("{what}: one side Ok, the other Err"),
    }
}

/// The acceptance-criteria sweep: for **every** program whose launches all
/// take the pre-execution path (the recording-eligible set), a trace
/// recorded under the default configuration replays bit-identically under
/// both the default and the 614 MHz configuration — the latter checked
/// against a *live functional run* of that configuration, proving one
/// trace serves foreign configurations, not just the one that recorded it.
#[test]
fn recorded_traces_replay_bit_identically_across_configs() {
    let mut eligible = Vec::new();
    let mut ineligible = Vec::new();
    for b in registry::all().iter().chain(registry::variants().iter()) {
        let key = b.spec().key;
        let input = &b.inputs()[0];
        let default_cfg = GpuConfigKind::Default.device_config();
        let (recorded, stored) =
            measure_with_device_config_recording(b.as_ref(), input, default_cfg.clone(), 0);
        let Some(st) = stored else {
            ineligible.push(key);
            continue;
        };
        eligible.push(key);

        // Replaying under the recording configuration reproduces the
        // recorded measurement exactly — without functional execution.
        let devices_before = kepler_sim::devices_created();
        let replays_before = kepler_sim::devices_replayed();
        let same_cfg = measure_from_trace(key, input, default_cfg, 0, &st);
        assert_result_bitwise_eq(&recorded, &same_cfg, &format!("{key} @default"));
        assert_eq!(
            kepler_sim::devices_created(),
            devices_before,
            "{key}: replay must not create a functional device"
        );
        assert_eq!(kepler_sim::devices_replayed(), replays_before + 1);

        // Replaying under a *different* clock configuration matches a live
        // functional run of that configuration, bit for bit.
        let c614 = GpuConfigKind::C614.device_config();
        let live = measure_with_device_config(b.as_ref(), input, c614.clone(), 0);
        let replayed = measure_from_trace(key, input, c614, 0, &st);
        assert_result_bitwise_eq(&live, &replayed, &format!("{key} @614"));
    }
    // The regular majority of the registry must opt in; losing eligibility
    // wholesale would silently turn every campaign back into functional
    // re-runs.
    assert!(
        eligible.len() >= 15,
        "only {} programs recorded traces (eligible: {eligible:?}, ineligible: {ineligible:?})",
        eligible.len()
    );
}

/// The campaign-level flow: a cold campaign records, a second campaign
/// with an *empty record cache* but the same trace directory replays
/// (simulated=0) and still produces bit-identical measurements — and the
/// v2 record it persists is byte-identical to the one the functional run
/// wrote, so replay warms the record cache indistinguishably.
#[test]
fn campaign_replays_from_traces_and_warms_identical_records() {
    let cache_a = scratch_dir("camp-cold");
    let cache_b = scratch_dir("camp-warm");
    let traces = scratch_dir("camp-traces");
    let b = registry::by_key("sgemm").unwrap();
    let input = &b.inputs()[0];

    let cold = Campaign::new(CampaignConfig {
        cache_dir: Some(cache_a.clone()),
        trace_dir: Some(traces.clone()),
        ..CampaignConfig::default()
    });
    let m_cold = cold
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    let s = cold.stats();
    assert_eq!((s.simulated, s.trace_replays), (1, 0), "{s}");

    let warm = Campaign::new(CampaignConfig {
        cache_dir: Some(cache_b.clone()),
        trace_dir: Some(traces.clone()),
        ..CampaignConfig::default()
    });
    let devices_before = kepler_sim::devices_created();
    let m_warm = warm
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    // A foreign config + rep the cold campaign never executed, served from
    // the same trace.
    let m_614 = warm.run(b.as_ref(), input, GpuConfigKind::C614, 2).unwrap();
    let s = warm.stats();
    assert_eq!(kepler_sim::devices_created(), devices_before);
    assert_eq!((s.simulated, s.trace_replays), (0, 2), "{s}");
    assert_bitwise_eq(&m_cold, &m_warm, "campaign replay @default");
    // The down-clocked replay really re-simulated under the foreign config:
    // lower clocks draw less energy.
    assert!(m_614.reading.energy_j < m_warm.reading.energy_j);

    // The replayed unit persisted a v2 record byte-identical to the
    // functional run's.
    let rec = |dir: &Path| {
        let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().map(|x| x == "camp") == Some(true))
            .collect();
        names.sort();
        names
    };
    let a = rec(&cache_a);
    assert_eq!(a.len(), 1);
    let name = a[0].file_name().unwrap();
    let twin = cache_b.join(name);
    assert!(twin.exists(), "replay must warm the same record identity");
    assert_eq!(
        std::fs::read(&a[0]).unwrap(),
        std::fs::read(&twin).unwrap(),
        "replay-written record differs from the functional one"
    );

    for d in [&cache_a, &cache_b, &traces] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// The memory model is part of the trace identity: a trace recorded under
/// the flat model must never replay under the cache model — the recorded
/// block costs would lack cache-tier counters — and each model records and
/// replays its *own* trace in the same directory.
#[test]
fn traces_never_cross_memory_models() {
    let traces = scratch_dir("memmodel-traces");
    let b = registry::by_key("sgemm").unwrap();
    let input = &b.inputs()[0];
    let fresh = || {
        Campaign::new(CampaignConfig {
            trace_dir: Some(traces.clone()),
            ..CampaignConfig::default()
        })
    };

    // Record under the flat model.
    let c0 = fresh();
    let mf = c0
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    assert_eq!(c0.stats().simulated, 1);

    // The cache model finds no trace to serve it: a plain miss (not even
    // stale — the keys differ), answered by a functional run that records
    // its own trace.
    let c1 = fresh();
    let mc = c1.run(b.as_ref(), input, GpuConfigKind::Cache, 0).unwrap();
    let s = c1.stats();
    assert_eq!(
        (s.simulated, s.trace_replays, s.trace_stale, s.trace_corrupt),
        (1, 0, 0, 0),
        "{s}"
    );
    assert!(
        mc.counters.dram_transactions > 0.0,
        "cached run must carry tier counters"
    );
    assert_eq!(mf.counters.dram_transactions, 0.0);

    // Now both models replay from their own traces, bit-identically.
    let c2 = fresh();
    let mf2 = c2
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    let mc2 = c2.run(b.as_ref(), input, GpuConfigKind::Cache, 0).unwrap();
    let s = c2.stats();
    assert_eq!((s.simulated, s.trace_replays), (0, 2), "{s}");
    assert_bitwise_eq(&mf, &mf2, "flat replay");
    assert_bitwise_eq(&mc, &mc2, "cached replay");

    let _ = std::fs::remove_dir_all(&traces);
}

/// Durability: damaged trace storage (truncated manifest, corrupted launch
/// record) is detected, counted, and answered with a clean functional
/// re-run whose result is bit-identical — and the re-run re-records, so
/// the store heals.
#[test]
fn damaged_traces_degrade_to_functional_reruns() {
    let traces = scratch_dir("dur-traces");
    let b = registry::by_key("sten").unwrap();
    let input = &b.inputs()[0];

    let fresh = |tag: u32| {
        let _ = tag;
        Campaign::new(CampaignConfig {
            trace_dir: Some(traces.clone()),
            ..CampaignConfig::default()
        })
    };

    // Record once.
    let c0 = fresh(0);
    let m0 = c0
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    assert_eq!(c0.stats().simulated, 1);

    // Sanity: an undamaged store replays.
    let c1 = fresh(1);
    let m1 = c1
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    let s = c1.stats();
    assert_eq!((s.simulated, s.trace_replays), (0, 1), "{s}");
    assert_bitwise_eq(&m0, &m1, "undamaged replay");

    // Truncate the manifest: corrupt, functional re-run, identical result.
    let manifest = std::fs::read_dir(&traces)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().map(|x| x == "tman") == Some(true))
        .expect("a manifest was recorded");
    let body = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, &body[..body.len() / 2]).unwrap();
    let c2 = fresh(2);
    let m2 = c2
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    let s = c2.stats();
    assert_eq!(
        (s.simulated, s.trace_replays, s.trace_corrupt),
        (1, 0, 1),
        "{s}"
    );
    assert_bitwise_eq(&m0, &m2, "after truncated manifest");

    // The re-run re-recorded; now damage a launch record's payload.
    let c3 = fresh(3);
    let m3 = c3
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    assert_eq!(c3.stats().trace_replays, 1, "store healed after re-record");
    assert_bitwise_eq(&m0, &m3, "healed replay");
    let tlr = std::fs::read_dir(&traces)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().map(|x| x == "tlr") == Some(true))
        .expect("a launch record exists");
    let mut payload = std::fs::read(&tlr).unwrap();
    let mid = payload.len() / 2;
    payload[mid] ^= 0xff;
    std::fs::write(&tlr, &payload).unwrap();
    let c4 = fresh(4);
    let m4 = c4
        .run(b.as_ref(), input, GpuConfigKind::Default, 0)
        .unwrap();
    let s = c4.stats();
    assert_eq!(
        (s.simulated, s.trace_replays, s.trace_corrupt),
        (1, 0, 1),
        "{s}"
    );
    assert_bitwise_eq(&m0, &m4, "after corrupt launch record");

    let _ = std::fs::remove_dir_all(&traces);
}
