//! Generators for the paper's tables.
//!
//! Every measuring generator takes the shared [`Campaign`] it draws its
//! readings from, and has a sibling `*_runs()` planner describing the
//! slice of the measurement matrix it needs, so `repro` can prefetch the
//! union of several artifacts in one deduplicated pass.

use crate::campaign::{rep_indices, Campaign, RunRequest};
use crate::configs::GpuConfigKind;
use rayon::prelude::*;
use serde::Serialize;
use workloads::bench::Suite;
use workloads::registry;

/// One Table-1 row: the program inventory.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    pub name: String,
    pub key: String,
    pub suite: Suite,
    pub kernels: u32,
    pub inputs: Vec<String>,
}

/// Table 1: program names, kernel counts and inputs.
pub fn table1() -> Vec<Table1Row> {
    registry::all()
        .iter()
        .map(|b| Table1Row {
            name: b.spec().name.to_string(),
            key: b.spec().key.to_string(),
            suite: b.spec().suite,
            kernels: b.spec().kernels,
            inputs: b.inputs().iter().map(|i| i.name.to_string()).collect(),
        })
        .collect()
}

/// One Table-2 row: per-suite measurement variability.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    pub suite: Option<Suite>,
    pub max_time_pct: f64,
    pub max_energy_pct: f64,
    pub avg_time_pct: f64,
    pub avg_energy_pct: f64,
}

/// The runs Table 2 needs. Variability is meaningless without all three
/// repetitions, so this planner ignores `--quick` on purpose.
pub fn table2_runs() -> Vec<RunRequest> {
    let mut runs = Vec::new();
    for b in registry::all() {
        let input = b.inputs()[0].clone();
        for rep in 0..3 {
            runs.push(RunRequest {
                key: b.spec().key,
                input: input.clone(),
                config: GpuConfigKind::Default,
                rep,
            });
        }
    }
    runs
}

/// Table 2: maximum and average run-to-run variability over three
/// repetitions per program (default configuration).
pub fn table2(c: &Campaign) -> Vec<Table2Row> {
    let keys: Vec<&'static str> = registry::all().iter().map(|b| b.spec().key).collect();
    let vars: Vec<(Suite, f64, f64)> = keys
        .par_iter()
        .filter_map(|key| {
            let b = registry::by_key(key).unwrap();
            let input = &b.inputs()[0];
            let m = c.median3(b.as_ref(), input, GpuConfigKind::Default).ok()?;
            Some((
                b.spec().suite,
                m.time_variability_pct,
                m.energy_variability_pct,
            ))
        })
        .collect();
    let mut rows = Vec::new();
    let mut push = |suite: Option<Suite>, v: Vec<&(Suite, f64, f64)>| {
        if v.is_empty() {
            return;
        }
        rows.push(Table2Row {
            suite,
            max_time_pct: v.iter().map(|x| x.1).fold(0.0, f64::max),
            max_energy_pct: v.iter().map(|x| x.2).fold(0.0, f64::max),
            avg_time_pct: v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64,
            avg_energy_pct: v.iter().map(|x| x.2).sum::<f64>() / v.len() as f64,
        });
    };
    for suite in Suite::ALL {
        push(Some(suite), vars.iter().filter(|x| x.0 == suite).collect());
    }
    push(None, vars.iter().collect());
    rows
}

/// One Table-3 cell: a variant's time/energy/power relative to the default
/// implementation under one configuration. `None` when the variant (or
/// the baseline) produced too few power samples at that configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    pub algorithm: &'static str,
    pub variant: &'static str,
    pub config: GpuConfigKind,
    pub time_ratio: Option<f64>,
    pub energy_ratio: Option<f64>,
    pub power_ratio: Option<f64>,
}

const TABLE3_CELLS: [(&str, &str, &str); 4] = [
    ("L-BFS", "atomic", "lbfs-atomic"),
    ("L-BFS", "wla", "lbfs-wla"),
    ("SSSP", "wlc", "sssp-wlc"),
    ("SSSP", "wln", "sssp-wln"),
];

fn table3_base_key(alg: &str) -> &'static str {
    if alg == "L-BFS" {
        "lbfs"
    } else {
        "sssp"
    }
}

/// The runs Table 3 needs: both base implementations and all four
/// variants, largest input, every configuration.
pub fn table3_runs(reps: u64) -> Vec<RunRequest> {
    let mut runs = Vec::new();
    for key in [
        "lbfs",
        "lbfs-atomic",
        "lbfs-wla",
        "sssp",
        "sssp-wlc",
        "sssp-wln",
    ] {
        let b = registry::by_key(key).unwrap();
        let input = b.inputs().last().unwrap().clone();
        for config in GpuConfigKind::ALL {
            for rep in rep_indices(reps) {
                runs.push(RunRequest {
                    key: b.spec().key,
                    input: input.clone(),
                    config,
                    rep,
                });
            }
        }
    }
    runs
}

/// Table 3: L-BFS (`atomic`, `wla`) and SSSP (`wlc`, `wln`) relative to
/// their default implementations on the largest road map, across all four
/// configurations.
pub fn table3(c: &Campaign, reps: u64) -> Vec<Table3Row> {
    let mut jobs = Vec::new();
    for (alg, variant, key) in &TABLE3_CELLS {
        for config in GpuConfigKind::ALL {
            jobs.push((*alg, *variant, *key, config));
        }
    }
    jobs.par_iter()
        .map(|(alg, variant, key, config)| {
            let run = |k: &str| {
                let b = registry::by_key(k).unwrap();
                let input = b.inputs().last().unwrap().clone(); // entire USA
                c.reading(b.as_ref(), &input, *config, reps)
            };
            let base = run(table3_base_key(alg));
            let alt = run(key);
            let (t, e, p) = match (base, alt) {
                (Ok(b), Ok(a)) => (
                    Some(a.active_runtime_s / b.active_runtime_s),
                    Some(a.energy_j / b.energy_j),
                    Some(a.avg_power_w / b.avg_power_w),
                ),
                _ => (None, None, None),
            };
            Table3Row {
                algorithm: alg,
                variant,
                config: *config,
                time_ratio: t,
                energy_ratio: e,
                power_ratio: p,
            }
        })
        .collect()
}

/// One Table-4 row: a BFS implementation's cost per 100k processed items.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    pub key: &'static str,
    /// (time, energy, power) per 100k vertices.
    pub per_vertex: (f64, f64, f64),
    /// (time, energy, power) per 100k edges.
    pub per_edge: (f64, f64, f64),
}

const TABLE4_KEYS: [&str; 4] = ["lbfs", "pbfs", "rbfs", "sbfs"];

/// The runs Table 4 needs: the four BFS implementations on their largest
/// inputs, default configuration.
pub fn table4_runs(reps: u64) -> Vec<RunRequest> {
    let mut runs = Vec::new();
    for key in TABLE4_KEYS {
        let b = registry::by_key(key).unwrap();
        let input = b.inputs().last().unwrap().clone();
        for rep in rep_indices(reps) {
            runs.push(RunRequest {
                key: b.spec().key,
                input: input.clone(),
                config: GpuConfigKind::Default,
                rep,
            });
        }
    }
    runs
}

/// Table 4: cross-suite BFS comparison, cost per 100k processed vertices
/// and edges on each implementation's largest input (default config).
pub fn table4(c: &Campaign, reps: u64) -> Vec<Table4Row> {
    TABLE4_KEYS
        .par_iter()
        .map(|key| {
            let b = registry::by_key(key).unwrap();
            let input = b.inputs().last().unwrap().clone();
            let m = c
                .measurement(b.as_ref(), &input, GpuConfigKind::Default, reps)
                .expect("BFS implementations must be measurable at default");
            let items = m.items.expect("BFS programs report item counts");
            let per = |count: u64| {
                let units = count as f64 / 100_000.0;
                (
                    m.reading.active_runtime_s / units,
                    m.reading.energy_j / units,
                    m.reading.avg_power_w / units,
                )
            };
            Table4Row {
                key,
                per_vertex: per(items.vertices),
                per_edge: per(items.edges),
            }
        })
        .collect()
}

/// One row of the companion technical report's detailed results (the
/// paper's reference [6]): absolute medians for one program-input under
/// one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct TrDetailRow {
    pub key: String,
    pub suite: Suite,
    pub input: String,
    pub config: GpuConfigKind,
    /// `None` when the run produced too few power samples.
    pub time_s: Option<f64>,
    pub energy_j: Option<f64>,
    pub power_w: Option<f64>,
}

/// The runs the technical-report detail dump needs: the entire matrix.
pub fn tr_detail_runs(reps: u64) -> Vec<RunRequest> {
    let mut runs = Vec::new();
    for b in registry::all() {
        for input in b.inputs() {
            for config in GpuConfigKind::ALL {
                for rep in rep_indices(reps) {
                    runs.push(RunRequest {
                        key: b.spec().key,
                        input: input.clone(),
                        config,
                        rep,
                    });
                }
            }
        }
    }
    runs
}

/// The technical report's detailed per-program results: every program,
/// every input, every configuration, absolute medians.
pub fn tr_detail(c: &Campaign, reps: u64) -> Vec<TrDetailRow> {
    let mut jobs = Vec::new();
    for b in registry::all() {
        for input in b.inputs() {
            for config in GpuConfigKind::ALL {
                jobs.push((b.spec().key, input.clone(), config));
            }
        }
    }
    jobs.par_iter()
        .map(|(key, input, config)| {
            let b = registry::by_key(key).unwrap();
            let r = c.reading(b.as_ref(), input, *config, reps);
            let (t, e, p) = match r {
                Ok(r) => (
                    Some(r.active_runtime_s),
                    Some(r.energy_j),
                    Some(r.avg_power_w),
                ),
                Err(_) => (None, None, None),
            };
            TrDetailRow {
                key: key.to_string(),
                suite: b.spec().suite,
                input: input.name.to_string(),
                config: *config,
                time_s: t,
                energy_j: e,
                power_w: p,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_complete() {
        let t = table1();
        assert_eq!(t.len(), 34);
        assert!(t.iter().any(|r| r.name == "L-BFS" && r.kernels == 5));
        assert!(t.iter().all(|r| !r.inputs.is_empty()));
    }

    #[test]
    fn planners_cover_their_tables() {
        // Table 2: 34 programs x 3 reps at the default configuration.
        assert_eq!(table2_runs().len(), 34 * 3);
        // Table 3: 6 implementations x 4 configs x 1 rep in quick mode.
        assert_eq!(table3_runs(1).len(), 6 * 4);
        assert_eq!(table3_runs(3).len(), 6 * 4 * 3);
        // Table 4: 4 BFS implementations, default config only.
        assert_eq!(table4_runs(1).len(), 4);
        // The TR detail matrix covers every program at least once per
        // configuration.
        let tr = tr_detail_runs(1);
        assert!(tr.len() >= 34 * 4);
    }
}
