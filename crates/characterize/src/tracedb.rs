//! The on-disk launch-trace database (format v3).
//!
//! Persists one [`RunTrace`] per *(program, input)* — note: per program
//! input, **not** per configuration or repetition. The recorded functional
//! stream is configuration-independent (the whole point of
//! `kepler_sim::trace`), so a single trace serves every clock/ECC/rep cell
//! of the measurement matrix; replaying it under the target seed and
//! configuration reproduces the live measurement bit for bit.
//!
//! ## Layout
//!
//! * `<fnv64(trace key)>.tman` — a plain-text **manifest** (versioned,
//!   fingerprinted, terminator-checked exactly like the campaign's `.camp`
//!   records): run identity, functional outputs (checksum, item counts),
//!   the ordered op timeline, and the content hashes of the launch records
//!   it references.
//! * `<fnv64(payload)>.tlr` — one binary **launch record** per distinct
//!   launch ([`kepler_sim::encode_launch`]), content-addressed by the FNV-1a
//!   hash of its encoded payload and therefore deduplicated across
//!   manifests; the hash is re-verified on load.
//!
//! ## Invalidation
//!
//! A manifest embeds the same model fingerprint the campaign cache uses,
//! folded with this module's [`TRACE_FORMAT`]: a simulator/measurement
//! model bump or a trace-format bump makes every stored trace *stale*.
//! Stale, corrupt, truncated or internally inconsistent entries are never
//! fatal — [`TraceDb::load`] reports `None`, a counter is bumped, and the
//! caller falls back to a clean functional re-run (which re-records).

use crate::campaign::{fbits, fnv1a64, parse_fbits};
use kepler_sim::{decode_launch, encode_launch, RunTrace, TraceOp};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use workloads::bench::ItemCounts;

/// Version tag of the trace key and on-disk layout. Bump on any change to
/// the manifest shape or the launch-record codec's meaning.
/// v4: the memory model joined the trace identity — recorded block costs
/// carry cache-tier counters, so a trace captured under one model must
/// never replay under another.
pub const TRACE_FORMAT: &str = "v4";
const MANIFEST_MAGIC: &str = "gpgpu-trace v4";
const MANIFEST_END: &str = "end gpgpu-trace";

/// A recorded run plus the functional outputs replay cannot recompute:
/// the benchmark's checksum and item counts come from functional
/// execution, so they ride along with the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTrace {
    pub run: RunTrace,
    pub checksum: f64,
    pub items: Option<ItemCounts>,
}

/// Handle on one trace directory. Cheap to construct; all methods are
/// `&self` and thread-safe (counters are atomics, file writes go through
/// unique temporaries + rename).
pub struct TraceDb {
    dir: PathBuf,
    fingerprint: u64,
    stale: AtomicU64,
    corrupt: AtomicU64,
    tmp_seq: AtomicU64,
}

impl TraceDb {
    /// Open (lazily — no I/O here) a trace directory. `model_fingerprint`
    /// is the campaign's [`crate::campaign::sim_fingerprint`]; the DB folds
    /// its own format version on top so either kind of change invalidates.
    pub fn new(dir: PathBuf, model_fingerprint: u64) -> Self {
        let ident = format!("{model_fingerprint:016x}|trace-{TRACE_FORMAT}");
        Self {
            dir,
            fingerprint: fnv1a64(ident.as_bytes()),
            stale: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// The directory this DB reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Manifests rejected for a fingerprint mismatch so far.
    pub fn stale(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Manifests or launch records rejected as corrupt/truncated so far.
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    fn manifest_path(&self, tkey: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.tman", fnv1a64(tkey.as_bytes())))
    }

    fn launch_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.tlr"))
    }

    /// Load the trace stored under `tkey`. `None` on a plain miss (no
    /// manifest) and on every defect: stale fingerprint, wrong key (hash
    /// collision), truncated or malformed manifest, missing/corrupt/
    /// hash-mismatched launch record, or an op referencing a launch the
    /// manifest does not list. Defects bump [`TraceDb::stale`] /
    /// [`TraceDb::corrupt`]; the caller re-runs functionally.
    pub fn load(&self, tkey: &str) -> Option<StoredTrace> {
        let body = std::fs::read_to_string(self.manifest_path(tkey)).ok()?;
        let (fp, key, memmodel, checksum, items, hashes, ops) = match parse_manifest(&body) {
            Some(m) => m,
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if key != tkey {
            // Hash collision or hand-edited file: treat as absent.
            return None;
        }
        if fp != self.fingerprint {
            self.stale.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if memmodel != mem_tag_of(tkey) {
            // A trace recorded under one memory model must never replay
            // under another: the per-block costs embed cache-tier
            // counters. Belt-and-braces with the key check above (the
            // model tag is part of the key), so this only fires on a
            // hand-edited or inconsistently migrated manifest.
            self.stale.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut launches = Vec::with_capacity(hashes.len());
        for h in &hashes {
            let payload = match std::fs::read(self.launch_path(*h)) {
                Ok(p) => p,
                Err(_) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
            let lt = if fnv1a64(&payload) == *h {
                decode_launch(&payload)
            } else {
                None
            };
            match lt {
                Some(lt) => launches.push(lt),
                None => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        for op in &ops {
            if let TraceOp::Launch { launch, .. } = op {
                if *launch >= launches.len() {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        Some(StoredTrace {
            run: RunTrace { launches, ops },
            checksum,
            items,
        })
    }

    /// Persist `st` under `tkey`. Best-effort, like the campaign cache: an
    /// unwritable directory silently degrades to record-nothing. Launch
    /// records are content-addressed, so an already-present `.tlr` is never
    /// rewritten and identical launches are shared across manifests.
    pub fn store(&self, tkey: &str, st: &StoredTrace) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let mut hashes = Vec::with_capacity(st.run.launches.len());
        for lt in &st.run.launches {
            let payload = encode_launch(lt);
            let hash = fnv1a64(&payload);
            hashes.push(hash);
            let path = self.launch_path(hash);
            if !path.exists() && !self.write_atomic(&path, &payload) {
                return;
            }
        }
        let body = format_manifest(self.fingerprint, tkey, st, &hashes);
        let _ = self.write_atomic(&self.manifest_path(tkey), body.as_bytes());
    }

    /// Unique-temporary + rename so concurrent writers (three reps of one
    /// cold workload race to record the same trace) never tear a record.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> bool {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_err() {
            return false;
        }
        if std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        true
    }
}

/// The trace identity of one *(program, input, memory model)*: versioned,
/// with the same spec/input cache keys the campaign identity uses — but no
/// clock/ECC config, rep or seed, because one trace serves all of those.
/// The memory model *is* part of the identity ([`kepler_sim::MemoryModel::tag`]):
/// the recorded per-block costs carry model-dependent cache-tier counters.
pub fn trace_key(spec_cache_key: &str, input_cache_key: &str, mem_tag: &str) -> String {
    format!("{TRACE_FORMAT}|{spec_cache_key}|{input_cache_key}|mem={mem_tag}")
}

/// The memory-model component of a [`trace_key`].
fn mem_tag_of(tkey: &str) -> &str {
    tkey.rsplit_once("|mem=").map_or("", |(_, m)| m)
}

type Manifest = (
    u64,
    String,
    String,
    f64,
    Option<ItemCounts>,
    Vec<u64>,
    Vec<TraceOp>,
);

fn format_manifest(fingerprint: u64, tkey: &str, st: &StoredTrace, hashes: &[u64]) -> String {
    let mut s = String::new();
    s.push_str(MANIFEST_MAGIC);
    s.push('\n');
    s.push_str(&format!("fingerprint {fingerprint:016x}\n"));
    s.push_str(&format!("key {tkey}\n"));
    s.push_str(&format!("memmodel {}\n", mem_tag_of(tkey)));
    s.push_str(&format!("checksum {}\n", fbits(st.checksum)));
    match &st.items {
        Some(it) => s.push_str(&format!("items {} {}\n", it.vertices, it.edges)),
        None => s.push_str("items none\n"),
    }
    s.push_str(&format!("launches {}\n", hashes.len()));
    for h in hashes {
        s.push_str(&format!("l {h:016x}\n"));
    }
    s.push_str(&format!("ops {}\n", st.run.ops.len()));
    for op in &st.run.ops {
        match *op {
            TraceOp::Launch {
                launch,
                work_multiplier,
            } => s.push_str(&format!("op launch {launch} {}\n", fbits(work_multiplier))),
            TraceOp::HostGap { seconds } => s.push_str(&format!("op gap {}\n", fbits(seconds))),
        }
    }
    s.push_str(MANIFEST_END);
    s.push('\n');
    s
}

/// Parse a manifest. `None` on any malformation, including a missing
/// terminator (how a truncated write is detected).
fn parse_manifest(body: &str) -> Option<Manifest> {
    let mut lines = body.lines();
    if lines.next()? != MANIFEST_MAGIC {
        return None;
    }
    let fp = u64::from_str_radix(lines.next()?.strip_prefix("fingerprint ")?, 16).ok()?;
    let key = lines.next()?.strip_prefix("key ")?.to_string();
    let memmodel = lines.next()?.strip_prefix("memmodel ")?.to_string();
    let checksum = parse_fbits(lines.next()?.strip_prefix("checksum ")?)?;
    let items_line = lines.next()?.strip_prefix("items ")?;
    let items = if items_line == "none" {
        None
    } else {
        let mut it = items_line.split_whitespace();
        Some(ItemCounts {
            vertices: it.next()?.parse().ok()?,
            edges: it.next()?.parse().ok()?,
        })
    };
    let n_launches: usize = lines.next()?.strip_prefix("launches ")?.parse().ok()?;
    let mut hashes = Vec::with_capacity(n_launches.min(1 << 16));
    for _ in 0..n_launches {
        hashes.push(u64::from_str_radix(lines.next()?.strip_prefix("l ")?, 16).ok()?);
    }
    let n_ops: usize = lines.next()?.strip_prefix("ops ")?.parse().ok()?;
    let mut ops = Vec::with_capacity(n_ops.min(1 << 16));
    for _ in 0..n_ops {
        let op = lines.next()?.strip_prefix("op ")?;
        if let Some(rest) = op.strip_prefix("launch ") {
            let mut toks = rest.split_whitespace();
            ops.push(TraceOp::Launch {
                launch: toks.next()?.parse().ok()?,
                work_multiplier: parse_fbits(toks.next()?)?,
            });
        } else if let Some(rest) = op.strip_prefix("gap ") {
            ops.push(TraceOp::HostGap {
                seconds: parse_fbits(rest)?,
            });
        } else {
            return None;
        }
    }
    if lines.next()? != MANIFEST_END {
        return None;
    }
    Some((fp, key, memmodel, checksum, items, hashes, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::cost::BlockCost;
    use kepler_sim::{KernelResources, LaunchTrace};
    use std::sync::atomic::AtomicU32;

    static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "gpgpu-tracedb-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_stored() -> StoredTrace {
        let costs: Vec<BlockCost> = (0..16)
            .map(|i| BlockCost {
                issue_cycles: 500.0 + i as f64,
                dram_bytes: 2048.0,
                transactions: 16,
                ideal_transactions: 16,
                lane_ops: [i, 0, 2, 0, 0, 0, 0],
                slots: 40,
                active_lanes: 1280,
                warps: 4,
                threads: 128,
                ..BlockCost::default()
            })
            .collect();
        let launch = LaunchTrace {
            kernel: "k".to_string(),
            params: vec![1, 2, 3],
            grid: 16,
            block_threads: 128,
            resources: KernelResources::default(),
            mem_fp: [11, 22],
            costs,
        };
        StoredTrace {
            run: RunTrace {
                launches: vec![launch],
                ops: vec![
                    TraceOp::Launch {
                        launch: 0,
                        work_multiplier: 2.5,
                    },
                    TraceOp::HostGap { seconds: 0.125 },
                    TraceOp::Launch {
                        launch: 0,
                        work_multiplier: 2.5,
                    },
                ],
            },
            checksum: 42.125,
            items: Some(ItemCounts {
                vertices: 5,
                edges: 9,
            }),
        }
    }

    #[test]
    fn store_load_round_trips_bitwise() {
        let dir = scratch_dir("roundtrip");
        let db = TraceDb::new(dir.clone(), 0xABCD);
        let tkey = trace_key("spec@k2", "in#n8", "flat");
        assert!(db.load(&tkey).is_none(), "miss before store");
        let st = sample_stored();
        db.store(&tkey, &st);
        let back = db.load(&tkey).expect("stored trace loads");
        assert_eq!(back, st);
        assert_eq!(back.checksum.to_bits(), st.checksum.to_bits());
        assert_eq!((db.stale(), db.corrupt()), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_addressing_deduplicates_launch_records() {
        let dir = scratch_dir("dedup");
        let db = TraceDb::new(dir.clone(), 1);
        let st = sample_stored();
        db.store(&trace_key("a", "x", "flat"), &st);
        db.store(&trace_key("b", "y", "flat"), &st);
        let tlrs = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().map(|x| x == "tlr") == Some(true))
            .count();
        assert_eq!(tlrs, 1, "identical launches share one record");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_fingerprint_is_rejected_and_counted() {
        let dir = scratch_dir("stale");
        let old = TraceDb::new(dir.clone(), 0xAAAA);
        let tkey = trace_key("s", "i", "flat");
        old.store(&tkey, &sample_stored());
        let new = TraceDb::new(dir.clone(), 0xBBBB);
        assert!(new.load(&tkey).is_none());
        assert_eq!((new.stale(), new.corrupt()), (1, 0));
        // Re-storing under the new fingerprint repairs it.
        new.store(&tkey, &sample_stored());
        assert!(new.load(&tkey).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_manifest_is_corrupt_not_fatal() {
        let dir = scratch_dir("trunc");
        let db = TraceDb::new(dir.clone(), 7);
        let tkey = trace_key("s", "i", "flat");
        db.store(&tkey, &sample_stored());
        let path = db.manifest_path(&tkey);
        let body = std::fs::read_to_string(&path).unwrap();
        // Every line-boundary truncation is rejected.
        let lines: Vec<&str> = body.lines().collect();
        for cut in 0..lines.len() {
            std::fs::write(&path, lines[..cut].join("\n")).unwrap();
            assert!(db.load(&tkey).is_none(), "cut at {cut} accepted");
        }
        assert_eq!(db.corrupt(), lines.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_launch_record_is_rejected() {
        let dir = scratch_dir("tlr");
        let db = TraceDb::new(dir.clone(), 7);
        let tkey = trace_key("s", "i", "flat");
        db.store(&tkey, &sample_stored());
        let tlr = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().map(|x| x == "tlr") == Some(true))
            .unwrap();
        // Flip one payload byte: the content hash no longer matches.
        let mut payload = std::fs::read(&tlr).unwrap();
        let mid = payload.len() / 2;
        payload[mid] ^= 0xff;
        std::fs::write(&tlr, &payload).unwrap();
        assert!(db.load(&tkey).is_none());
        assert_eq!(db.corrupt(), 1);
        // Remove it entirely: still a clean rejection.
        std::fs::remove_file(&tlr).unwrap();
        assert!(db.load(&tkey).is_none());
        assert_eq!(db.corrupt(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_range_op_index_is_corrupt() {
        let dir = scratch_dir("opidx");
        let db = TraceDb::new(dir.clone(), 7);
        let tkey = trace_key("s", "i", "flat");
        let mut st = sample_stored();
        st.run.ops.push(TraceOp::Launch {
            launch: 5, // only one launch record exists
            work_multiplier: 1.0,
        });
        db.store(&tkey, &st);
        assert!(db.load(&tkey).is_none());
        assert_eq!(db.corrupt(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_key_is_clock_free_but_model_bound() {
        let k = trace_key("sgemm@k3", "small#n256", "flat");
        assert_eq!(k, "v4|sgemm@k3|small#n256|mem=flat");
        assert!(
            !k.contains("cfg="),
            "one trace serves every clock/ECC config"
        );
        // The memory model splits the trace identity: recorded block costs
        // embed cache-tier counters, so flat and cached traces must never
        // be interchangeable.
        let c = trace_key("sgemm@k3", "small#n256", "cache-00000000deadbeef");
        assert_ne!(k, c);
        assert_eq!(mem_tag_of(&c), "cache-00000000deadbeef");
    }

    #[test]
    fn flat_and_cached_traces_are_separate_entries() {
        let dir = scratch_dir("memsplit");
        let db = TraceDb::new(dir.clone(), 7);
        let flat = trace_key("s", "i", "flat");
        let cached = trace_key("s", "i", "cache-0123456789abcdef");
        db.store(&flat, &sample_stored());
        // A trace recorded under FlatDram is a plain miss under the cache
        // model — never replayed, not even counted as stale.
        assert!(db.load(&cached).is_none());
        assert_eq!((db.stale(), db.corrupt()), (0, 0));
        assert!(db.load(&flat).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_memmodel_mismatch_is_stale() {
        let dir = scratch_dir("memstale");
        let db = TraceDb::new(dir.clone(), 7);
        let tkey = trace_key("s", "i", "flat");
        db.store(&tkey, &sample_stored());
        let path = db.manifest_path(&tkey);
        let body = std::fs::read_to_string(&path).unwrap();
        // Forge the recorded model line while keeping the key intact —
        // simulates an inconsistent hand migration.
        let forged = body.replace("memmodel flat", "memmodel cache-ffffffffffffffff");
        std::fs::write(&path, forged).unwrap();
        assert!(db.load(&tkey).is_none());
        assert_eq!((db.stale(), db.corrupt()), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
