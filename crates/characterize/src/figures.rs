//! Generators for the paper's figures.
//!
//! * Figure 1 — a sample power profile (sensor samples + threshold).
//! * Figures 2/3/4 — per-suite box statistics of the runtime/energy/power
//!   ratios between two configurations (614/default, 324/614, ECC/default).
//! * Figure 5 — power ratios across program inputs.
//! * Figure 6 — absolute power ranges per suite and configuration.
//!
//! All measuring generators read from the shared [`Campaign`]; each has a
//! `*_runs()` planner so `repro` can prefetch the union of several
//! artifacts in one deduplicated pass. Figure 1 is the exception: it
//! replays one fixed-seed run for its sample trace and is not part of the
//! measurement matrix.

use crate::campaign::{rep_indices, Campaign, RunRequest};
use crate::configs::GpuConfigKind;
use gpower::{box_stats, BoxStats, K20Power, PowerSensor, Sample};
use kepler_sim::Device;
use rayon::prelude::*;
use serde::Serialize;
use workloads::bench::Suite;
use workloads::registry;

/// One program's ratio data point (alt config relative to base config).
#[derive(Debug, Clone, Serialize)]
pub struct ProgramRatio {
    pub key: String,
    pub suite: Suite,
    pub input: String,
    pub time: f64,
    pub energy: f64,
    pub power: f64,
}

/// One suite's box-and-whisker glyphs.
#[derive(Debug, Clone, Serialize)]
pub struct SuiteBox {
    pub suite: Suite,
    pub time: BoxStats,
    pub energy: BoxStats,
    pub power: BoxStats,
}

/// Data behind one of the paper's ratio figures (2, 3 or 4).
#[derive(Debug, Clone, Serialize)]
pub struct RatioFigure {
    pub base: GpuConfigKind,
    pub alt: GpuConfigKind,
    pub programs: Vec<ProgramRatio>,
    pub suites: Vec<SuiteBox>,
    /// Programs excluded because a configuration produced too few power
    /// samples (the paper's 324-MHz exclusions).
    pub excluded: Vec<String>,
}

/// The runs a ratio figure needs: every program's primary input under both
/// configurations.
pub fn ratio_figure_runs(base: GpuConfigKind, alt: GpuConfigKind, reps: u64) -> Vec<RunRequest> {
    let mut runs = Vec::new();
    for b in registry::all() {
        let input = b.inputs()[0].clone();
        for config in [base, alt] {
            for rep in rep_indices(reps) {
                runs.push(RunRequest {
                    key: b.spec().key,
                    input: input.clone(),
                    config,
                    rep,
                });
            }
        }
    }
    runs
}

/// Compute a ratio figure: every Table-1 program (primary input), `reps`
/// repetitions per configuration with the median reported.
pub fn ratio_figure(
    c: &Campaign,
    base: GpuConfigKind,
    alt: GpuConfigKind,
    reps: u64,
) -> RatioFigure {
    let keys: Vec<&'static str> = registry::all().iter().map(|b| b.spec().key).collect();
    let results: Vec<Result<ProgramRatio, String>> = keys
        .par_iter()
        .map(|key| {
            let b = registry::by_key(key).unwrap();
            let input = &b.inputs()[0];
            let base_r = c
                .reading(b.as_ref(), input, base, reps)
                .map_err(|e| format!("{key}: {e}"))?;
            let alt_r = c
                .reading(b.as_ref(), input, alt, reps)
                .map_err(|e| format!("{key}: {e}"))?;
            Ok(ProgramRatio {
                key: key.to_string(),
                suite: b.spec().suite,
                input: input.name.to_string(),
                time: alt_r.active_runtime_s / base_r.active_runtime_s,
                energy: alt_r.energy_j / base_r.energy_j,
                power: alt_r.avg_power_w / base_r.avg_power_w,
            })
        })
        .collect();
    let mut programs = Vec::new();
    let mut excluded = Vec::new();
    for r in results {
        match r {
            Ok(p) => programs.push(p),
            Err(e) => excluded.push(e),
        }
    }
    let suites = Suite::ALL
        .iter()
        .filter_map(|&suite| {
            let t: Vec<f64> = programs
                .iter()
                .filter(|p| p.suite == suite)
                .map(|p| p.time)
                .collect();
            if t.is_empty() {
                return None;
            }
            let e: Vec<f64> = programs
                .iter()
                .filter(|p| p.suite == suite)
                .map(|p| p.energy)
                .collect();
            let w: Vec<f64> = programs
                .iter()
                .filter(|p| p.suite == suite)
                .map(|p| p.power)
                .collect();
            Some(SuiteBox {
                suite,
                time: box_stats(&t),
                energy: box_stats(&e),
                power: box_stats(&w),
            })
        })
        .collect();
    RatioFigure {
        base,
        alt,
        programs,
        suites,
        excluded,
    }
}

/// Figure 1 data: the sensor samples of one run plus the tool's threshold.
#[derive(Debug, Clone, Serialize)]
pub struct PowerProfile {
    pub key: String,
    pub samples: Vec<Sample>,
    pub threshold_w: f64,
    pub idle_w: f64,
    pub active_runtime_s: f64,
}

/// Record the power profile of one program run (Figure 1).
pub fn power_profile(key: &str) -> PowerProfile {
    let b = registry::by_key(key).expect("unknown program");
    let input = &b.inputs()[0];
    let mut cfg = GpuConfigKind::Default.device_config();
    cfg.jitter_seed = 42;
    let mut dev = Device::new(cfg);
    b.run(&mut dev, input);
    let (trace, _) = dev.finish();
    let samples = PowerSensor::default().sample(&trace, 42);
    let reading = K20Power::default()
        .analyze(&samples)
        .expect("profile program must be measurable");
    PowerProfile {
        key: key.to_string(),
        samples,
        threshold_w: reading.threshold_w,
        idle_w: reading.idle_w,
        active_runtime_s: reading.active_runtime_s,
    }
}

/// Figure 5 data: power when switching inputs, relative to the first input.
#[derive(Debug, Clone, Serialize)]
pub struct InputPowerRow {
    pub key: String,
    pub suite: Suite,
    pub input: String,
    /// Power relative to the program's first (smallest) input.
    pub power_ratio: f64,
    pub power_w: f64,
}

/// The runs Figure 5 needs: every input of every multi-input program at
/// the default configuration.
pub fn input_power_figure_runs(reps: u64) -> Vec<RunRequest> {
    let mut runs = Vec::new();
    for b in registry::all() {
        if b.inputs().len() <= 1 {
            continue;
        }
        for input in b.inputs() {
            for rep in rep_indices(reps) {
                runs.push(RunRequest {
                    key: b.spec().key,
                    input: input.clone(),
                    config: GpuConfigKind::Default,
                    rep,
                });
            }
        }
    }
    runs
}

/// Compute Figure 5: programs with multiple inputs, default configuration.
pub fn input_power_figure(c: &Campaign, reps: u64) -> Vec<InputPowerRow> {
    let multi: Vec<&'static str> = registry::all()
        .iter()
        .filter(|b| b.inputs().len() > 1)
        .map(|b| b.spec().key)
        .collect();
    multi
        .par_iter()
        .flat_map(|key| {
            let b = registry::by_key(key).unwrap();
            let inputs = b.inputs();
            let powers: Vec<Option<f64>> = inputs
                .iter()
                .map(|input| {
                    c.reading(b.as_ref(), input, GpuConfigKind::Default, reps)
                        .ok()
                        .map(|r| r.avg_power_w)
                })
                .collect();
            let base = powers[0];
            inputs
                .iter()
                .zip(powers)
                .skip(1)
                .filter_map(|(input, p)| {
                    let (base, p) = (base?, p?);
                    Some(InputPowerRow {
                        key: key.to_string(),
                        suite: b.spec().suite,
                        input: input.name.to_string(),
                        power_ratio: p / base,
                        power_w: p,
                    })
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Figure 6 data: absolute average-power box stats per suite per config.
#[derive(Debug, Clone, Serialize)]
pub struct PowerRangeCell {
    pub suite: Suite,
    pub config: GpuConfigKind,
    pub power: BoxStats,
    pub n_programs: usize,
}

/// The runs Figure 6 needs: every program's primary input under all four
/// configurations.
pub fn power_range_figure_runs(reps: u64) -> Vec<RunRequest> {
    let mut runs = Vec::new();
    for b in registry::all() {
        let input = b.inputs()[0].clone();
        for config in GpuConfigKind::ALL {
            for rep in rep_indices(reps) {
                runs.push(RunRequest {
                    key: b.spec().key,
                    input: input.clone(),
                    config,
                    rep,
                });
            }
        }
    }
    runs
}

/// Compute Figure 6 over all programs and all four configurations.
pub fn power_range_figure(c: &Campaign, reps: u64) -> Vec<PowerRangeCell> {
    let keys: Vec<&'static str> = registry::all().iter().map(|b| b.spec().key).collect();
    let all: Vec<(Suite, GpuConfigKind, f64)> = keys
        .par_iter()
        .flat_map(|key| {
            GpuConfigKind::ALL.into_par_iter().filter_map(move |kind| {
                let b = registry::by_key(key).unwrap();
                let input = &b.inputs()[0];
                c.reading(b.as_ref(), input, kind, reps)
                    .ok()
                    .map(|r| (b.spec().suite, kind, r.avg_power_w))
            })
        })
        .collect();
    let mut out = Vec::new();
    for suite in Suite::ALL {
        for config in GpuConfigKind::ALL {
            let powers: Vec<f64> = all
                .iter()
                .filter(|(s, c, _)| *s == suite && *c == config)
                .map(|(_, _, p)| *p)
                .collect();
            if !powers.is_empty() {
                out.push(PowerRangeCell {
                    suite,
                    config,
                    power: box_stats(&powers),
                    n_programs: powers.len(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::measure;

    #[test]
    fn power_profile_has_idle_and_active_phases() {
        let p = power_profile("sgemm");
        assert!(p.samples.len() > 30);
        assert!(p.threshold_w > p.idle_w);
        assert!(p.active_runtime_s > 1.0);
        let peak = p.samples.iter().map(|s| s.watts).fold(0.0, f64::max);
        assert!(peak > p.threshold_w);
    }

    #[test]
    fn ratio_figure_smoke_single_suite() {
        // Tiny smoke test: one pass (reps=1) would still take a while over
        // all programs, so just exercise the plumbing through measure() on
        // a couple of programs via the public API instead.
        let b = registry::by_key("sgemm").unwrap();
        let input = &b.inputs()[0];
        let base = measure(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        let alt = measure(b.as_ref(), input, GpuConfigKind::C614, 0).unwrap();
        let ratio = alt.reading.avg_power_w / base.reading.avg_power_w;
        assert!(ratio < 1.0, "614 must lower power, ratio {ratio}");
    }

    #[test]
    fn ratio_figure_planner_covers_both_configs() {
        let runs = ratio_figure_runs(GpuConfigKind::Default, GpuConfigKind::C614, 1);
        assert_eq!(runs.len(), 34 * 2);
        assert!(runs.iter().any(|r| r.config == GpuConfigKind::C614));
    }
}
