//! Sanitized runs: executing a benchmark program with the
//! [`sim_sanitizer`] checkers attached, and optionally with full telemetry
//! at the same time (so profile traces carry the findings).

use crate::configs::GpuConfigKind;
use crate::experiment::{measure_traced, TracedMeasurement};
use kepler_sim::Device;
use sim_sanitizer::{Allowlist, CheckerSet, Report, Sanitizer};
use std::sync::Arc;
use workloads::bench::{Benchmark, InputSpec};

/// A run under the sanitizer: its [`Report`] plus the program's own result
/// checksum (the sanitizer must never change the answer).
#[derive(Debug, Clone)]
pub struct SanitizedRun {
    pub report: Report,
    pub checksum: f64,
}

/// Build the effective allowlist for `bench`: its own
/// [`Benchmark::sanitizer_allowlist`] entries (scoped to its key) merged
/// with `extra` (e.g. a committed baseline file).
///
/// Panics on a malformed workload-provided entry — that is a bug in the
/// workload, not an input error.
pub fn workload_allowlist(bench: &dyn Benchmark, extra: &Allowlist) -> Allowlist {
    let key = bench.spec().key;
    let mut list = Allowlist::from_workload(key, bench.sanitizer_allowlist())
        .unwrap_or_else(|e| panic!("{e}"));
    list.extend(extra.clone());
    list
}

/// Run `bench` on `input` under the default configuration with the given
/// checkers attached and return the raw report — no allowlist applied.
pub fn sanitize_run_raw(
    bench: &dyn Benchmark,
    input: &InputSpec,
    checks: CheckerSet,
) -> SanitizedRun {
    let kind = GpuConfigKind::Default;
    let cfg = kind.device_config();
    let san = Arc::new(Sanitizer::new(bench.spec().key, input.name, &cfg, checks));
    let mut dev = Device::new(cfg);
    dev.set_access_observer(san.clone());
    let out = bench.run(&mut dev, input);
    SanitizedRun {
        report: san.report(),
        checksum: out.checksum,
    }
}

/// [`sanitize_run_raw`] followed by the workload's own allowlist plus
/// `extra` — the standard pipeline.
pub fn sanitize_run(
    bench: &dyn Benchmark,
    input: &InputSpec,
    checks: CheckerSet,
    extra: &Allowlist,
) -> SanitizedRun {
    let mut run = sanitize_run_raw(bench, input, checks);
    workload_allowlist(bench, extra).apply(&mut run.report);
    run
}

/// A traced measurement with the sanitizer riding along: the usual
/// [`measure_traced`] pipeline, then a second sanitized run whose findings
/// are appended to the event stream as [`sim_telemetry::Event::Finding`]s
/// stamped at the end of the trace.
///
/// Two runs are used so the measured reading stays bit-identical to the
/// untraced pipeline (same seeds, same code path) while the checkers still
/// see every access.
pub fn measure_traced_checked(
    bench: &dyn Benchmark,
    input: &InputSpec,
    kind: GpuConfigKind,
    rep: u64,
    event_capacity: usize,
    checks: CheckerSet,
    extra: &Allowlist,
) -> (TracedMeasurement, Report) {
    let mut traced = measure_traced(bench, input, kind, rep, event_capacity);
    let run = sanitize_run(bench, input, checks, extra);
    assert_eq!(
        run.checksum,
        traced.checksum,
        "sanitizer perturbed the computation of {}",
        bench.spec().key
    );
    let t_end = traced.trace.end_time();
    traced.events.extend(run.report.to_events(t_end));
    (traced, run.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_telemetry::Event;
    use workloads::registry;

    #[test]
    fn clean_workloads_sanitize_clean() {
        // No-false-positive gate: hazard-free workloads must stay clean
        // under the correctness checkers with no allowlist at all.
        for key in ["sgemm", "fft", "md"] {
            let b = registry::by_key(key).unwrap();
            let input = &b.inputs()[0];
            let run = sanitize_run_raw(b.as_ref(), input, CheckerSet::default());
            assert!(
                run.report.clean(),
                "{key} should be hazard-free:\n{}",
                run.report.render_text()
            );
            assert!(run.report.accesses > 0);
            assert!(run.report.launches > 0);
        }
    }

    #[test]
    fn checked_trace_carries_findings_and_matches_plain_reading() {
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let (traced, report) = measure_traced_checked(
            b.as_ref(),
            input,
            GpuConfigKind::Default,
            0,
            1 << 20,
            CheckerSet::default(),
            &Allowlist::default(),
        );
        // The reading is the untraced pipeline's reading (sanitizer rides
        // a separate run).
        let plain =
            crate::experiment::measure(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert_eq!(traced.reading.unwrap().energy_j, plain.reading.energy_j);
        // Finding events appear iff the report has findings.
        let n_finding_events = traced
            .events
            .iter()
            .filter(|e| matches!(e, Event::Finding { .. }))
            .count();
        assert_eq!(n_finding_events, report.findings.len());
    }
}
