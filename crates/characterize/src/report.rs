//! Plain-text rendering of tables and figures, matching the layout of the
//! paper's evaluation section closely enough to eyeball side by side.

use crate::figures::{InputPowerRow, PowerProfile, PowerRangeCell, RatioFigure};
use crate::tables::{Table1Row, Table2Row, Table3Row, Table4Row};
use std::fmt::Write;

fn opt(v: Option<f64>) -> String {
    v.map_or_else(|| "   n/a".to_string(), |x| format!("{x:6.2}"))
}

/// Render Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Table 1: program names, number of global kernels, inputs"
    )
    .unwrap();
    writeln!(s, "{:8} {:12} {:>3}  Inputs", "Program", "Suite", "#K").unwrap();
    for r in rows {
        writeln!(
            s,
            "{:8} {:12} {:>3}  {}",
            r.name,
            r.suite.name(),
            r.kernels,
            r.inputs.join("; ")
        )
        .unwrap();
    }
    s
}

/// Render Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    writeln!(s, "Table 2: maximum and average measurement variability").unwrap();
    writeln!(
        s,
        "{:12} {:>9} {:>11} {:>9} {:>11}",
        "", "max time", "max energy", "avg time", "avg energy"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:12} {:>8.1}% {:>10.1}% {:>8.1}% {:>10.1}%",
            r.suite.map_or("Overall", |x| x.name()),
            r.max_time_pct,
            r.max_energy_pct,
            r.avg_time_pct,
            r.avg_energy_pct
        )
        .unwrap();
    }
    s
}

/// Render Table 3.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Table 3: alternate implementations of L-BFS and SSSP relative to default"
    )
    .unwrap();
    writeln!(
        s,
        "{:6} {:7} {:>8} {:>7} {:>7} {:>7}",
        "Alg", "variant", "config", "time", "energy", "power"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:6} {:7} {:>8} {} {} {}",
            r.algorithm,
            r.variant,
            r.config.name(),
            opt(r.time_ratio),
            opt(r.energy_ratio),
            opt(r.power_ratio)
        )
        .unwrap();
    }
    s
}

/// Render Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Table 4: cross-benchmark BFS comparison (default config)"
    )
    .unwrap();
    writeln!(
        s,
        "{:6} {:>12} {:>12} {:>12}   per 100k vertices",
        "", "time", "energy", "power"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:6} {:>12.4} {:>12.2} {:>12.4}",
            r.key, r.per_vertex.0, r.per_vertex.1, r.per_vertex.2
        )
        .unwrap();
    }
    writeln!(
        s,
        "{:6} {:>12} {:>12} {:>12}   per 100k edges",
        "", "time", "energy", "power"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:6} {:>12.4} {:>12.2} {:>12.4}",
            r.key, r.per_edge.0, r.per_edge.1, r.per_edge.2
        )
        .unwrap();
    }
    s
}

/// Render Figure 1 as an ASCII power-over-time plot.
pub fn render_fig1(p: &PowerProfile) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Figure 1: sample power profile ({}, threshold {:.1} W, idle {:.1} W, active {:.2} s)",
        p.key, p.threshold_w, p.idle_w, p.active_runtime_s
    )
    .unwrap();
    let peak = p.samples.iter().map(|x| x.watts).fold(1.0, f64::max);
    let end = p.samples.last().map_or(1.0, |x| x.t);
    const ROWS: usize = 16;
    const COLS: usize = 78;
    let mut grid = vec![vec![b' '; COLS]; ROWS];
    // Threshold line.
    let thr_row = ROWS - 1 - ((p.threshold_w / peak) * (ROWS - 1) as f64) as usize;
    for c in grid[thr_row.min(ROWS - 1)].iter_mut() {
        *c = b'-';
    }
    for sm in &p.samples {
        let col = ((sm.t / end) * (COLS - 1) as f64) as usize;
        let row = ROWS - 1 - ((sm.watts / peak).clamp(0.0, 1.0) * (ROWS - 1) as f64) as usize;
        grid[row.min(ROWS - 1)][col.min(COLS - 1)] = b'*';
    }
    for (i, row) in grid.iter().enumerate() {
        let label = peak * (ROWS - 1 - i) as f64 / (ROWS - 1) as f64;
        writeln!(s, "{label:6.0}W |{}", String::from_utf8_lossy(row)).unwrap();
    }
    writeln!(s, "        +{}", "-".repeat(COLS)).unwrap();
    writeln!(s, "         0s{:>width$.1}s", end, width = COLS - 3).unwrap();
    s
}

/// Render a ratio figure (Figures 2, 3, 4).
pub fn render_ratio_figure(f: &RatioFigure, title: &str) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "{title} ({} relative to {})",
        f.alt.name(),
        f.base.name()
    )
    .unwrap();
    writeln!(
        s,
        "{:12} {:>6} {:>28} {:>28} {:>28}",
        "Suite",
        "n",
        "runtime min/q1/med/q3/max",
        "energy min/q1/med/q3/max",
        "power min/q1/med/q3/max"
    )
    .unwrap();
    for sb in &f.suites {
        let b = |x: &gpower::BoxStats| {
            format!(
                "{:5.2} {:5.2} {:5.2} {:5.2} {:5.2}",
                x.min, x.q1, x.median, x.q3, x.max
            )
        };
        writeln!(
            s,
            "{:12} {:>6} {:>28} {:>28} {:>28}",
            sb.suite.name(),
            sb.time.n,
            b(&sb.time),
            b(&sb.energy),
            b(&sb.power)
        )
        .unwrap();
    }
    writeln!(s, "per program:").unwrap();
    for p in &f.programs {
        writeln!(
            s,
            "  {:8} {:12} {:26} time {:5.2}  energy {:5.2}  power {:5.2}",
            p.key,
            p.suite.name(),
            p.input,
            p.time,
            p.energy,
            p.power
        )
        .unwrap();
    }
    if !f.excluded.is_empty() {
        writeln!(
            s,
            "excluded (insufficient power samples): {}",
            f.excluded.join(", ")
        )
        .unwrap();
    }
    s
}

/// Render Figure 5.
pub fn render_fig5(rows: &[InputPowerRow]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Figure 5: power when varying the program input (relative to the first input)"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:12} {:26} ratio {:5.2}  ({:5.1} W)",
            r.key, r.input, r.power_ratio, r.power_w
        )
        .unwrap();
    }
    s
}

/// Render Figure 6.
pub fn render_fig6(cells: &[PowerRangeCell]) -> String {
    let mut s = String::new();
    writeln!(s, "Figure 6: range of power consumption (absolute watts)").unwrap();
    writeln!(
        s,
        "{:12} {:>8} {:>6} {:>28}",
        "Suite", "config", "n", "power min/q1/med/q3/max"
    )
    .unwrap();
    for c in cells {
        writeln!(
            s,
            "{:12} {:>8} {:>6} {:5.1} {:5.1} {:5.1} {:5.1} {:5.1}",
            c.suite.name(),
            c.config.name(),
            c.n_programs,
            c.power.min,
            c.power.q1,
            c.power.median,
            c.power.q3,
            c.power.max
        )
        .unwrap();
    }
    s
}

/// Render the technical report's detailed per-program results.
pub fn render_tr_detail(rows: &[crate::tables::TrDetailRow]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Detailed results (companion technical report): absolute medians"
    )
    .unwrap();
    writeln!(
        s,
        "{:12} {:26} {:>8} {:>9} {:>10} {:>8}",
        "Program", "Input", "config", "time [s]", "energy [J]", "pwr [W]"
    )
    .unwrap();
    let f = |v: Option<f64>, w: usize| match v {
        Some(x) => format!("{x:>w$.1}"),
        None => format!("{:>w$}", "n/a"),
    };
    for r in rows {
        writeln!(
            s,
            "{:12} {:26} {:>8} {} {} {}",
            r.key,
            r.input,
            r.config.name(),
            f(r.time_s, 9),
            f(r.energy_j, 10),
            f(r.power_w, 8)
        )
        .unwrap();
    }
    s
}

/// Render the telemetry-backed per-phase energy breakdown of one run.
///
/// The phases come from the simulator's board-interval events: `idle`
/// (pre-run lead-in and post-tail floor), `gap` (host-side time between
/// kernels), `kernel_static` (idle + static overhead while a kernel runs)
/// and `tail` (the driver's power decay after the last kernel). The dynamic
/// SM energy is everything the kernels' blocks actually drew; together the
/// five rows sum to the ground-truth trace energy.
pub fn render_phase_breakdown(tl: &sim_telemetry::Timeline) -> String {
    use sim_telemetry::BoardPhase;
    let total = tl.total_energy_j();
    let mut s = String::new();
    writeln!(s, "Per-phase energy breakdown (telemetry)").unwrap();
    writeln!(s, "{:14} {:>12} {:>7}", "phase", "energy [J]", "share").unwrap();
    let pct = |e: f64| {
        if total > 0.0 {
            100.0 * e / total
        } else {
            0.0
        }
    };
    let mut row = |name: &str, e: f64| {
        writeln!(s, "{:14} {:>12.2} {:>6.1}%", name, e, pct(e)).unwrap();
    };
    for phase in [
        BoardPhase::Idle,
        BoardPhase::Gap,
        BoardPhase::KernelStatic,
        BoardPhase::Tail,
    ] {
        row(phase.name(), tl.phase_energy_j(phase));
    }
    row("sm-dynamic", tl.sm_energy_j);
    row("total", total);
    writeln!(
        s,
        "SMs active: {}   DRAM moved: {:.2} GB (peak {:.1} GB/s, contended {:.2} s)",
        tl.sms.len(),
        tl.dram_bytes / 1e9,
        tl.dram_peak_bytes_per_s / 1e9,
        tl.contention_s
    )
    .unwrap();
    for lane in &tl.sms {
        writeln!(
            s,
            "  SM {:>2}: {:>9.2} J  busy {:>7.3} s  issue {:>5.1}%  peak blocks {}",
            lane.sm,
            lane.energy_j,
            lane.busy_s,
            100.0 * lane.mean_issue_frac(),
            lane.peak_resident
        )
        .unwrap();
    }
    s
}

/// Render the per-workload instruction-class energy-breakdown table.
///
/// Each workload block lists every [`gpower::EnergyClass`] with its
/// attributed joules and share of the board trace-integral energy; the
/// rows sum to the board energy exactly (the `unmodeled` residual is
/// defined by subtraction and carries its own signed share).
pub fn render_energy_breakdown(rows: &[crate::energy::EnergyBreakdownRow]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Instruction-class energy attribution (default config, board trace integral)"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{} [{}]  board {:.2} J  unmodeled {:+.2}%",
            r.key, r.input, r.board_energy_j, r.unmodeled_pct
        )
        .unwrap();
        for (class, j) in &r.classes {
            let share = if r.board_energy_j > 0.0 {
                100.0 * j / r.board_energy_j
            } else {
                0.0
            };
            writeln!(s, "  {:10} {:>12.3} J {:>7.2}%", class, j, share).unwrap();
        }
    }
    s
}

/// Render the sampled-energy error study: one row per sampling policy,
/// followed by the per-workload signed errors as figure data.
pub fn render_sampling_error(rows: &[crate::energy::SamplingErrorRow]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Sampled-energy error vs. sensor-sampling policy (default config)"
    )
    .unwrap();
    writeln!(
        s,
        "{:22} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "policy", "rate", "phase", "jitter", "window", "mean |err|", "max |err|"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:22} {:>6.0}Hz {:>7.2}s {:>7.2}s {:>7.2}s {:>9.3}% {:>9.3}%",
            r.policy, r.rate_hz, r.phase_s, r.jitter_s, r.window_s, r.mean_abs_pct, r.max_abs_pct
        )
        .unwrap();
    }
    writeln!(s, "per-workload signed error [%]:").unwrap();
    for r in rows {
        write!(s, "  {:22}", r.policy).unwrap();
        for (key, pct) in &r.per_workload_pct {
            write!(s, " {key}={pct:+.3}").unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

/// Render any figure/table data as CSV for downstream plotting.
pub fn ratio_figure_csv(fig: &RatioFigure) -> String {
    let mut s = String::from("key,suite,input,time_ratio,energy_ratio,power_ratio\n");
    for p in &fig.programs {
        writeln!(
            s,
            "{},{},\"{}\",{},{},{}",
            p.key,
            p.suite.name(),
            p.input,
            p.time,
            p.energy,
            p.power
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::table1;

    #[test]
    fn table1_renders_all_programs() {
        let s = render_table1(&table1());
        assert!(s.contains("L-BFS"));
        assert!(s.contains("NSP"));
        assert!(s.lines().count() >= 36);
    }

    #[test]
    fn csv_export_shape() {
        use crate::configs::GpuConfigKind;
        use crate::figures::{ProgramRatio, RatioFigure};
        use workloads::bench::Suite;
        let fig = RatioFigure {
            base: GpuConfigKind::Default,
            alt: GpuConfigKind::C614,
            programs: vec![ProgramRatio {
                key: "nb".into(),
                suite: Suite::CudaSdk,
                input: "100k bodies".into(),
                time: 1.15,
                energy: 0.97,
                power: 0.85,
            }],
            suites: vec![],
            excluded: vec![],
        };
        let csv = ratio_figure_csv(&fig);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "key,suite,input,time_ratio,energy_ratio,power_ratio"
        );
        assert!(lines
            .next()
            .unwrap()
            .starts_with("nb,CUDA SDK,\"100k bodies\",1.15"));
    }

    #[test]
    fn phase_breakdown_renders_all_phases_and_lanes() {
        use crate::configs::GpuConfigKind;
        use crate::experiment::measure_traced;
        use workloads::registry;
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let m = measure_traced(b.as_ref(), input, GpuConfigKind::Default, 0, 1 << 20);
        let tl = sim_telemetry::build_timeline(&m.events);
        let s = render_phase_breakdown(&tl);
        for name in [
            "idle",
            "gap",
            "kernel_static",
            "tail",
            "sm-dynamic",
            "total",
        ] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
        assert!(s.contains("SM  0:"), "{s}");
        // The rendered total is the reconciled trace energy.
        let rel = (tl.total_energy_j() - m.trace.total_energy()).abs() / m.trace.total_energy();
        assert!(rel < 1e-6);
    }

    #[test]
    fn opt_formats_none() {
        assert!(opt(None).contains("n/a"));
        assert_eq!(opt(Some(1.5)).trim(), "1.50");
    }
}
