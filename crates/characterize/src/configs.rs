//! The paper's four GPU configurations (§IV.B).

use kepler_sim::{ClockConfig, DeviceConfig};
use serde::{Deserialize, Serialize};

/// The four configurations of the study. All share one physical K20c; only
/// clocks and ECC change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuConfigKind {
    /// 705 MHz core / 2.6 GHz memory, ECC off.
    Default,
    /// 614 MHz core / 2.6 GHz memory, ECC off.
    C614,
    /// 324 MHz core / 324 MHz memory, ECC off.
    C324,
    /// 705 MHz core / 2.6 GHz memory, ECC on.
    Ecc,
}

impl GpuConfigKind {
    pub const ALL: [GpuConfigKind; 4] = [
        GpuConfigKind::Default,
        GpuConfigKind::C614,
        GpuConfigKind::C324,
        GpuConfigKind::Ecc,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            GpuConfigKind::Default => "default",
            GpuConfigKind::C614 => "614",
            GpuConfigKind::C324 => "324",
            GpuConfigKind::Ecc => "ECC",
        }
    }

    /// The device configuration for this setting.
    pub fn device_config(&self) -> DeviceConfig {
        match self {
            GpuConfigKind::Default => DeviceConfig::k20c(ClockConfig::k20_default(), false),
            GpuConfigKind::C614 => DeviceConfig::k20c(ClockConfig::k20_614(), false),
            GpuConfigKind::C324 => DeviceConfig::k20c(ClockConfig::k20_324(), false),
            GpuConfigKind::Ecc => DeviceConfig::k20c(ClockConfig::k20_default(), true),
        }
    }
}

impl std::fmt::Display for GpuConfigKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_configs_match_paper() {
        assert_eq!(GpuConfigKind::ALL.len(), 4);
        let d = GpuConfigKind::Default.device_config();
        assert_eq!(d.clocks.core_mhz, 705.0);
        assert!(!d.ecc);
        let c = GpuConfigKind::C614.device_config();
        assert_eq!(c.clocks.core_mhz, 614.0);
        assert_eq!(c.clocks.mem_mhz, 2600.0);
        let l = GpuConfigKind::C324.device_config();
        assert_eq!(l.clocks.mem_mhz, 324.0);
        let e = GpuConfigKind::Ecc.device_config();
        assert!(e.ecc);
        assert_eq!(e.clocks.core_mhz, 705.0);
    }

    #[test]
    fn names_render() {
        assert_eq!(GpuConfigKind::C324.to_string(), "324");
    }
}
