//! The paper's four GPU configurations (§IV.B), plus cache-model variants
//! used by the cache-sensitivity artifact.

use kepler_sim::{CacheConfig, ClockConfig, DeviceConfig, MemoryModel};
use serde::{Deserialize, Serialize};

/// The four configurations of the study — all sharing one physical K20c,
/// only clocks and ECC changing — plus two cache-model variants
/// ([`GpuConfigKind::Cache`], [`GpuConfigKind::Cache614`]) that enable the
/// sectored L1/L2 memory hierarchy. The cache variants are deliberately
/// **not** in [`GpuConfigKind::ALL`]: the paper's tables and figures run
/// under the flat-DRAM model, byte-identical to the pre-cache simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuConfigKind {
    /// 705 MHz core / 2.6 GHz memory, ECC off.
    Default,
    /// 614 MHz core / 2.6 GHz memory, ECC off.
    C614,
    /// 324 MHz core / 324 MHz memory, ECC off.
    C324,
    /// 705 MHz core / 2.6 GHz memory, ECC on.
    Ecc,
    /// Default clocks with the sectored L1/L2 cache model enabled.
    Cache,
    /// 614 MHz core with the cache model enabled (for cache-sensitivity
    /// ratios against [`GpuConfigKind::Cache`]).
    Cache614,
}

impl GpuConfigKind {
    pub const ALL: [GpuConfigKind; 4] = [
        GpuConfigKind::Default,
        GpuConfigKind::C614,
        GpuConfigKind::C324,
        GpuConfigKind::Ecc,
    ];

    /// Every named configuration, including the cache variants that the
    /// paper artifacts do not run.
    pub const VARIANTS: [GpuConfigKind; 6] = [
        GpuConfigKind::Default,
        GpuConfigKind::C614,
        GpuConfigKind::C324,
        GpuConfigKind::Ecc,
        GpuConfigKind::Cache,
        GpuConfigKind::Cache614,
    ];

    /// Resolve a configuration from its stable [`Self::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::VARIANTS.iter().copied().find(|k| k.name() == name)
    }

    /// Memory-model identity tag of this configuration — `"flat"` or
    /// `"cache-<fingerprint>"` ([`kepler_sim::MemoryModel::tag`]). Part of
    /// every campaign cache key.
    pub fn mem_tag(&self) -> String {
        self.device_config().mem_model.tag()
    }

    pub fn name(&self) -> &'static str {
        match self {
            GpuConfigKind::Default => "default",
            GpuConfigKind::C614 => "614",
            GpuConfigKind::C324 => "324",
            GpuConfigKind::Ecc => "ECC",
            GpuConfigKind::Cache => "cache",
            GpuConfigKind::Cache614 => "cache614",
        }
    }

    /// The device configuration for this setting.
    pub fn device_config(&self) -> DeviceConfig {
        match self {
            GpuConfigKind::Default => DeviceConfig::k20c(ClockConfig::k20_default(), false),
            GpuConfigKind::C614 => DeviceConfig::k20c(ClockConfig::k20_614(), false),
            GpuConfigKind::C324 => DeviceConfig::k20c(ClockConfig::k20_324(), false),
            GpuConfigKind::Ecc => DeviceConfig::k20c(ClockConfig::k20_default(), true),
            GpuConfigKind::Cache => {
                let mut cfg = DeviceConfig::k20c(ClockConfig::k20_default(), false);
                cfg.mem_model = MemoryModel::Cached(CacheConfig::k20());
                cfg
            }
            GpuConfigKind::Cache614 => {
                let mut cfg = DeviceConfig::k20c(ClockConfig::k20_614(), false);
                cfg.mem_model = MemoryModel::Cached(CacheConfig::k20());
                cfg
            }
        }
    }
}

impl std::fmt::Display for GpuConfigKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_configs_match_paper() {
        assert_eq!(GpuConfigKind::ALL.len(), 4);
        let d = GpuConfigKind::Default.device_config();
        assert_eq!(d.clocks.core_mhz, 705.0);
        assert!(!d.ecc);
        let c = GpuConfigKind::C614.device_config();
        assert_eq!(c.clocks.core_mhz, 614.0);
        assert_eq!(c.clocks.mem_mhz, 2600.0);
        let l = GpuConfigKind::C324.device_config();
        assert_eq!(l.clocks.mem_mhz, 324.0);
        let e = GpuConfigKind::Ecc.device_config();
        assert!(e.ecc);
        assert_eq!(e.clocks.core_mhz, 705.0);
    }

    #[test]
    fn names_render() {
        assert_eq!(GpuConfigKind::C324.to_string(), "324");
        assert_eq!(GpuConfigKind::Cache.to_string(), "cache");
    }

    #[test]
    fn cache_variants_enable_the_cache_model_but_stay_out_of_all() {
        let c = GpuConfigKind::Cache.device_config();
        assert!(c.mem_model.cache().is_some());
        assert_eq!(c.clocks.core_mhz, 705.0);
        let c614 = GpuConfigKind::Cache614.device_config();
        assert!(c614.mem_model.cache().is_some());
        assert_eq!(c614.clocks.core_mhz, 614.0);
        // The paper's table/figure artifacts stay on the flat model.
        assert!(!GpuConfigKind::ALL.contains(&GpuConfigKind::Cache));
        assert!(!GpuConfigKind::ALL.contains(&GpuConfigKind::Cache614));
        for k in GpuConfigKind::ALL {
            assert!(k.device_config().mem_model.cache().is_none());
        }
    }
}
