//! # characterize
//!
//! The paper's contribution: the energy/power/performance characterization
//! study. This crate drives the 34 [`workloads`] programs through the four
//! GPU configurations on the [`kepler_sim`] device, measures each run with
//! the emulated sensor + K20Power tool from [`gpower`], applies the paper's
//! three-repetition median methodology, and generates the data behind
//! every table and figure of the evaluation section.

pub mod analysis;
pub mod cache;
pub mod campaign;
pub mod configs;
pub mod energy;
pub mod experiment;
pub mod figures;
pub mod report;
pub mod sanity;
pub mod tables;
pub mod tracedb;

pub use analysis::{
    render_static_analysis, static_analysis, static_analysis_runs, StaticAnalysis,
    StaticAnalysisRow,
};
pub use cache::{
    cache_sensitivity, cache_sensitivity_runs, render_cache_sensitivity, CacheSensitivity,
    CacheSensitivityRow, CACHE_SERVED_THRESHOLD,
};
pub use campaign::{
    pareto_front, plan_artifacts, sim_fingerprint, sweep_grid, Artifact, Campaign, CampaignConfig,
    CampaignStats, RunRequest, SweepPoint, SWEEP_CORE_MHZ, SWEEP_MEM_MHZ,
};
pub use configs::GpuConfigKind;
pub use energy::{
    energy_breakdown, energy_runs, sampling_error, EnergyBreakdownRow, SamplingErrorRow, ENERGY_SET,
};
pub use experiment::{
    combine_median3, measure, measure_median3, measure_traced, measure_with_device_config,
    Measurement, MedianMeasurement, TracedMeasurement,
};
pub use sanity::{
    measure_traced_checked, sanitize_run, sanitize_run_raw, workload_allowlist, SanitizedRun,
};
pub use tracedb::{trace_key, StoredTrace, TraceDb, TRACE_FORMAT};
