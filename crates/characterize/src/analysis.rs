//! The `static-analysis` artifact: cross-validation of the static
//! boundedness classifier against measured clock sensitivity.
//!
//! [`sim_analyze`] classifies each regular program memory- or
//! compute-bound from its *declared* footprints alone (arithmetic
//! intensity vs. the K20c ridge). The measured side uses the same run
//! slice as Figure 2 — every program at the Default and C614
//! configurations — and computes the **core-clock sensitivity**
//!
//! ```text
//! s = (t_614 / t_default - 1) / (705/614 - 1)
//! ```
//!
//! i.e. the fraction of the 14.8% core slowdown that shows up in runtime:
//! `s ~ 1` for compute-bound programs (runtime scales with the core
//! clock), `s ~ 0` for memory-bound ones (runtime pinned by DRAM). A
//! program is *measured* compute-bound iff `s >= 0.5`, and the artifact
//! reports where the static verdict agrees.

use crate::campaign::{Campaign, RunRequest};
use crate::configs::GpuConfigKind;
use crate::figures::ratio_figure_runs;
use rayon::prelude::*;
use serde::Serialize;
use sim_analyze::{analyze_workload, StaticClass};
use std::fmt::Write as _;
use workloads::registry;

/// Measured-sensitivity threshold separating the two classes.
pub const SENSITIVITY_THRESHOLD: f64 = 0.5;

/// One program's static-vs-measured boundedness comparison.
#[derive(Debug, Clone, Serialize)]
pub struct StaticAnalysisRow {
    pub key: &'static str,
    pub input: String,
    /// Static arithmetic intensity, declared ops per declared byte.
    pub intensity: f64,
    /// `memory-bound` / `compute-bound` / `unknown` (no declared work).
    pub static_class: &'static str,
    /// Measured core-clock sensitivity (see module docs).
    pub sensitivity: f64,
    pub measured_class: &'static str,
    /// Agreement; `None` when the static class is unknown.
    pub agree: Option<bool>,
    /// Launch units captured / units the prover verified parallel-safe.
    pub units: usize,
    pub provable_units: usize,
}

/// The full artifact: rows plus programs excluded by measurement failure.
#[derive(Debug, Clone, Serialize)]
pub struct StaticAnalysis {
    pub rows: Vec<StaticAnalysisRow>,
    pub excluded: Vec<String>,
}

impl StaticAnalysis {
    /// `(agreeing rows, classifiable rows)`.
    pub fn agreement(&self) -> (usize, usize) {
        let total = self.rows.iter().filter(|r| r.agree.is_some()).count();
        let agree = self.rows.iter().filter(|r| r.agree == Some(true)).count();
        (agree, total)
    }
}

/// The measured runs the artifact needs — exactly Figure 2's slice
/// (Default vs C614 over every program), so a warm campaign serves this
/// artifact without extra simulations.
pub fn static_analysis_runs(reps: u64) -> Vec<RunRequest> {
    ratio_figure_runs(GpuConfigKind::Default, GpuConfigKind::C614, reps)
}

/// Compute the artifact over every *regular* program (irregular codes
/// declare no footprints; their static class would be vacuously unknown).
pub fn static_analysis(c: &Campaign, reps: u64) -> StaticAnalysis {
    let keys: Vec<&'static str> = registry::all()
        .iter()
        .filter(|b| b.spec().regular)
        .map(|b| b.spec().key)
        .collect();
    let clock_gain = 705.0 / 614.0 - 1.0;
    let results: Vec<Result<StaticAnalysisRow, String>> = keys
        .par_iter()
        .map(|key| {
            let b = registry::by_key(key).unwrap();
            let input = &b.inputs()[0];
            let base = c
                .reading(b.as_ref(), input, GpuConfigKind::Default, reps)
                .map_err(|e| format!("{key}: {e}"))?;
            let alt = c
                .reading(b.as_ref(), input, GpuConfigKind::C614, reps)
                .map_err(|e| format!("{key}: {e}"))?;
            let sensitivity = (alt.active_runtime_s / base.active_runtime_s - 1.0) / clock_gain;
            let wa = analyze_workload(b.as_ref(), input);
            let measured = if sensitivity >= SENSITIVITY_THRESHOLD {
                StaticClass::ComputeBound
            } else {
                StaticClass::MemoryBound
            };
            let (provable, _, _) = wa.verdict_counts();
            Ok(StaticAnalysisRow {
                key,
                input: input.name.to_string(),
                intensity: wa.classification.intensity,
                static_class: wa.classification.class.name(),
                sensitivity,
                measured_class: measured.name(),
                agree: match wa.classification.class {
                    StaticClass::Unknown => None,
                    cls => Some(cls == measured),
                },
                units: wa.units.len(),
                provable_units: provable,
            })
        })
        .collect();
    let mut rows = Vec::new();
    let mut excluded = Vec::new();
    for r in results {
        match r {
            Ok(row) => rows.push(row),
            Err(e) => excluded.push(e),
        }
    }
    StaticAnalysis { rows, excluded }
}

/// Render the cross-validation table.
pub fn render_static_analysis(a: &StaticAnalysis) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Static analysis: declared-footprint boundedness vs measured clock sensitivity"
    )
    .unwrap();
    writeln!(
        s,
        "{:8} {:26} {:>9} {:>14} {:>6} {:>14} {:>6} {:>6}",
        "Program", "Input", "ops/B", "static", "sens", "measured", "agree", "units"
    )
    .unwrap();
    for r in &a.rows {
        writeln!(
            s,
            "{:8} {:26} {:>9.3} {:>14} {:>6.2} {:>14} {:>6} {:>3}/{}",
            r.key,
            r.input,
            r.intensity,
            r.static_class,
            r.sensitivity,
            r.measured_class,
            match r.agree {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            },
            r.provable_units,
            r.units,
        )
        .unwrap();
    }
    let (agree, total) = a.agreement();
    writeln!(s, "agreement: {agree}/{total} classifiable programs").unwrap();
    for e in &a.excluded {
        writeln!(s, "excluded: {e}").unwrap();
    }
    s
}
