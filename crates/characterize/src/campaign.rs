//! The measurement campaign engine.
//!
//! The paper's evaluation is **one measurement matrix** — every program ×
//! input × clock/ECC configuration × repetition — from which every table
//! and figure is derived. Before this module existed, each artifact
//! generator re-simulated its own overlapping slice of that matrix (the
//! default configuration alone was swept four times by `repro all`). A
//! [`Campaign`] instead:
//!
//! * **plans** — collects the deduplicated run matrix requested by any set
//!   of artifacts ([`plan_artifacts`] / the `*_runs()` planners in
//!   [`crate::tables`] and [`crate::figures`]);
//! * **executes** — runs the unique (workload, input, config, rep) units
//!   on the rayon work-stealing pool, exactly once per process, with
//!   in-flight deduplication so even unplanned concurrent requests cannot
//!   double-simulate;
//! * **memoizes** — results (including *measurement failures*, the paper's
//!   324-MHz exclusions) are kept in-process and served to every artifact;
//! * **persists** — each unit is written to a content-addressed on-disk
//!   cache keyed by `(workload key, input, config, rep, seed, sim-version
//!   fingerprint)` in a versioned plain-text record. Corrupt or truncated
//!   entries and records from an older simulator model are re-run, never
//!   fatal.
//!
//! Median-of-three readings are *derived* from the three cached single
//! runs via [`combine_median3`], so the rep is the cache unit and a quick
//! (1-rep) figure shares its rep-0 simulation with the full methodology.

use crate::configs::GpuConfigKind;
use crate::experiment::{
    combine_median3, measure_from_trace, measure_with_device_config,
    measure_with_device_config_recording, run_seed, Measurement, MedianMeasurement,
};
use crate::tracedb::{trace_key, TraceDb};
use gpower::{PowerError, Reading};
use kepler_sim::{ClockConfig, DeviceConfig, KernelCounters};
use rayon::prelude::*;
use sim_telemetry::{Event, TelemetrySink};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use workloads::bench::{Benchmark, InputSpec, ItemCounts};
use workloads::registry;

/// Version prefix of the canonical cache key and the on-disk record
/// layout. Bump when the record format changes shape.
const FORMAT_VERSION: &str = "v3";
const RECORD_MAGIC: &str = "gpgpu-campaign v3";
const RECORD_END: &str = "end gpgpu-campaign";

/// 64-bit FNV-1a (the *correct* prime — see the `run_seed` fix).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of the simulation + measurement model this build produces.
/// Any change that alters simulated numbers bumps one of the component
/// version tags, which invalidates every persisted record at load time.
pub fn sim_fingerprint() -> u64 {
    let ident = format!(
        "{}|{}|{}|characterize/{}",
        kepler_sim::SIM_VERSION,
        kepler_sim::mem::MODEL_VERSION,
        gpower::MEASUREMENT_VERSION,
        env!("CARGO_PKG_VERSION"),
    );
    fnv1a64(ident.as_bytes())
}

/// One unit of the measurement matrix: a single repetition of one program
/// input under one configuration.
#[derive(Debug, Clone)]
pub struct RunRequest {
    pub key: &'static str,
    pub input: InputSpec,
    pub config: GpuConfigKind,
    pub rep: u64,
}

impl RunRequest {
    /// The unit's canonical cache key — the same identity every cache
    /// layer uses, and the partition key a dispatch coordinator shards
    /// by (units with equal keys must land on the same worker so the
    /// in-flight dedup can collapse them).
    pub fn cache_key(&self) -> String {
        canonical_key_parts(self.key, &self.input, self.config.name(), self.rep)
    }
}

/// The artifacts whose data comes from the measurement matrix. Table 1 and
/// Figure 1 are excluded on purpose: the inventory needs no measurements
/// and the sample power profile uses its own fixed-seed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    Table2,
    Table3,
    Table4,
    Fig2,
    Fig3,
    Fig4,
    Fig5,
    Fig6,
    TrDetail,
    /// Instruction-class energy-attribution table over the energy-study
    /// workload set.
    EnergyBreakdown,
    /// Sampled-energy error vs. sensor-sampling policy.
    SamplingError,
    /// Static boundedness class vs. measured clock sensitivity
    /// (cross-validation of the `sim-analyze` classifier).
    StaticAnalysis,
    /// Flat-DRAM vs sectored-cache comparison: hit rates, core-clock
    /// sensitivity under both memory models, static cache class.
    CacheSensitivity,
}

impl Artifact {
    /// Parse a `repro`-style artifact selector. Returns `None` for
    /// artifacts that need no measurements (`table1`, `fig1`) and unknown
    /// names alike.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "table2" => Artifact::Table2,
            "table3" => Artifact::Table3,
            "table4" => Artifact::Table4,
            "fig2" => Artifact::Fig2,
            "fig3" => Artifact::Fig3,
            "fig4" => Artifact::Fig4,
            "fig5" => Artifact::Fig5,
            "fig6" => Artifact::Fig6,
            "trdata" => Artifact::TrDetail,
            "energy-breakdown" => Artifact::EnergyBreakdown,
            "energy-sampling-error" => Artifact::SamplingError,
            "static-analysis" => Artifact::StaticAnalysis,
            "cache-sensitivity" => Artifact::CacheSensitivity,
            _ => return None,
        })
    }

    /// The runs this artifact needs at the given repetition count.
    pub fn runs(&self, reps: u64) -> Vec<RunRequest> {
        match self {
            // Table 2's variability is meaningless without all three reps.
            Artifact::Table2 => crate::tables::table2_runs(),
            Artifact::Table3 => crate::tables::table3_runs(reps),
            Artifact::Table4 => crate::tables::table4_runs(reps),
            Artifact::Fig2 => {
                crate::figures::ratio_figure_runs(GpuConfigKind::Default, GpuConfigKind::C614, reps)
            }
            Artifact::Fig3 => {
                crate::figures::ratio_figure_runs(GpuConfigKind::C614, GpuConfigKind::C324, reps)
            }
            Artifact::Fig4 => {
                crate::figures::ratio_figure_runs(GpuConfigKind::Default, GpuConfigKind::Ecc, reps)
            }
            Artifact::Fig5 => crate::figures::input_power_figure_runs(reps),
            Artifact::Fig6 => crate::figures::power_range_figure_runs(reps),
            Artifact::TrDetail => crate::tables::tr_detail_runs(reps),
            // Both energy artifacts draw the same run slice.
            Artifact::EnergyBreakdown | Artifact::SamplingError => crate::energy::energy_runs(reps),
            // Same slice as Figure 2: a warm campaign adds no runs.
            Artifact::StaticAnalysis => crate::analysis::static_analysis_runs(reps),
            Artifact::CacheSensitivity => crate::cache::cache_sensitivity_runs(reps),
        }
    }
}

/// Collect the deduplicated run matrix of a set of artifacts. Requests are
/// deduplicated by canonical cache key, preserving first-seen order.
pub fn plan_artifacts(artifacts: &[Artifact], reps: u64) -> Vec<RunRequest> {
    let mut seen = HashSet::new();
    let mut plan = Vec::new();
    for a in artifacts {
        for req in a.runs(reps) {
            if seen.insert(canonical_key_parts(
                req.key,
                &req.input,
                req.config.name(),
                req.rep,
            )) {
                plan.push(req);
            }
        }
    }
    plan
}

/// Rep indices a `reps` request expands to: the paper's three repetitions,
/// or the single rep-0 run in `--quick` mode.
pub fn rep_indices(reps: u64) -> std::ops::Range<u64> {
    if reps >= 3 {
        0..3
    } else {
        0..1
    }
}

/// The canonical identity of one run unit, *without* the model
/// fingerprint (the fingerprint is stored inside the record so an
/// outdated entry is observed as stale rather than silently orphaned).
/// `cfg_tag` is [`GpuConfigKind::name`] for the paper's named settings or
/// [`SweepPoint::cache_tag`] for a sweep grid point.
/// Public face of [`canonical_key_parts`]: the cache identity of one unit
/// under an arbitrary configuration tag ([`GpuConfigKind::name`] or
/// [`SweepPoint::cache_tag`]). Lets a coordinator compute partition keys
/// for sweep units without executing anything.
pub fn unit_cache_key(key: &str, input: &InputSpec, cfg_tag: &str, rep: u64) -> String {
    canonical_key_parts(key, input, cfg_tag, rep)
}

fn canonical_key_parts(key: &str, input: &InputSpec, cfg_tag: &str, rep: u64) -> String {
    // The seed is derived from (key, input, rep), but it is part of the
    // paper's methodology, so it is folded into the identity explicitly:
    // a change to the seeding scheme must invalidate cached measurements.
    let seed = run_seed(key, input.name, rep);
    let spec_key = registry::by_key(key)
        .map(|b| b.spec().cache_key())
        .unwrap_or_else(|| key.to_string());
    // The memory model is an explicit part of a unit's identity: a run
    // under the cache hierarchy must never collide with a flat-DRAM run
    // of the same workload, whatever the config tags happen to be named.
    // Tags that are not named configs (sweep grid points) run flat.
    let mem = GpuConfigKind::from_name(cfg_tag)
        .map(|k| k.mem_tag())
        .unwrap_or_else(|| kepler_sim::MemoryModel::FlatDram.tag());
    format!(
        "{FORMAT_VERSION}|{spec_key}|{}|cfg={cfg_tag}|mem={mem}|rep={rep}|seed={seed:016x}",
        input.cache_key(),
    )
}

// ---------------------------------------------------------------------------
// Clock sweeps (the what-if grid behind `POST /v1/sweep`)
// ---------------------------------------------------------------------------

/// Valid core-clock range of a sweep point, MHz (the K20c driver ladder
/// spans 324–758 MHz).
pub const SWEEP_CORE_MHZ: (f64, f64) = (324.0, 758.0);
/// Valid memory-clock range of a sweep point, MHz.
pub const SWEEP_MEM_MHZ: (f64, f64) = (324.0, 2600.0);

/// Known (clock MHz, relative voltage) pairs of the K20c core DVFS ladder.
const CORE_VREL_LADDER: [(f64, f64); 6] = [
    (324.0, 0.85),
    (614.0, 0.95),
    (640.0, 0.96),
    (666.0, 0.98),
    (705.0, 1.0),
    (758.0, 1.03),
];

/// The memory domain exposes only two voltages (324 MHz and 2.6 GHz).
const MEM_VREL_LADDER: [(f64, f64); 2] = [(324.0, 0.85), (2600.0, 1.0)];

/// Clamped piecewise-linear interpolation over a (clock, vrel) ladder.
fn interp_vrel(mhz: f64, ladder: &[(f64, f64)]) -> f64 {
    let (lo, hi) = (ladder[0], ladder[ladder.len() - 1]);
    if mhz <= lo.0 {
        return lo.1;
    }
    if mhz >= hi.0 {
        return hi.1;
    }
    for w in ladder.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if mhz <= x1 {
            return y0 + (y1 - y0) * (mhz - x0) / (x1 - x0);
        }
    }
    hi.1
}

/// One point of a clock sweep: an arbitrary core/memory clock pair with
/// domain voltages interpolated from the K20c DVFS ladder. A point that
/// lands exactly on a driver setting reproduces that setting's voltages,
/// so e.g. `SweepPoint { core_mhz: 614.0, mem_mhz: 2600.0 }` measures
/// bit-identically to [`GpuConfigKind::C614`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    pub core_mhz: f64,
    pub mem_mhz: f64,
}

impl SweepPoint {
    /// Whether both clocks are finite and inside the driver's range.
    pub fn is_valid(&self) -> bool {
        self.core_mhz.is_finite()
            && self.mem_mhz.is_finite()
            && (SWEEP_CORE_MHZ.0..=SWEEP_CORE_MHZ.1).contains(&self.core_mhz)
            && (SWEEP_MEM_MHZ.0..=SWEEP_MEM_MHZ.1).contains(&self.mem_mhz)
    }

    /// The clock configuration of this point, with interpolated voltages.
    pub fn clock_config(&self) -> ClockConfig {
        ClockConfig {
            core_mhz: self.core_mhz,
            mem_mhz: self.mem_mhz,
            core_vrel: interp_vrel(self.core_mhz, &CORE_VREL_LADDER),
            mem_vrel: interp_vrel(self.mem_mhz, &MEM_VREL_LADDER),
        }
    }

    /// The device configuration of this point (ECC off, like the paper's
    /// clock studies).
    pub fn device_config(&self) -> DeviceConfig {
        DeviceConfig::k20c(self.clock_config(), false)
    }

    /// Cache-identity tag. Clocks participate by their exact bit patterns,
    /// so `614` and `614.0000001` are distinct cache entries.
    pub fn cache_tag(&self) -> String {
        format!(
            "sweep:c{:016x}:m{:016x}",
            self.core_mhz.to_bits(),
            self.mem_mhz.to_bits()
        )
    }
}

/// The cartesian grid of a sweep request, deduplicated by exact clock bit
/// patterns, preserving first-seen order.
pub fn sweep_grid(core_mhz: &[f64], mem_mhz: &[f64]) -> Vec<SweepPoint> {
    let mut seen = HashSet::new();
    let mut grid = Vec::new();
    for &c in core_mhz {
        for &m in mem_mhz {
            if seen.insert((c.to_bits(), m.to_bits())) {
                grid.push(SweepPoint {
                    core_mhz: c,
                    mem_mhz: m,
                });
            }
        }
    }
    grid
}

/// Pareto-optimality flags for `(runtime, energy)` pairs, index-matched to
/// the input: `true` iff no other point is at least as good on both axes
/// and strictly better on one. Unmeasurable points should be filtered out
/// before calling (a NaN never dominates and is never dominated).
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<bool> {
    points
        .iter()
        .enumerate()
        .map(|(i, &(t, e))| {
            !points
                .iter()
                .enumerate()
                .any(|(j, &(tj, ej))| j != i && tj <= t && ej <= e && (tj < t || ej < e))
        })
        .collect()
}

/// Counter snapshot of a campaign's cache behaviour. Obtained from
/// [`Campaign::stats`], which is safe to call from any thread at any time
/// (the `repro` closing summary and the `sim-serve` `/metrics` endpoint
/// both read it live).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Simulations actually executed by this process.
    pub simulated: u64,
    /// Requests served from the in-process memo.
    pub memo_hits: u64,
    /// Requests served from the on-disk cache.
    pub disk_hits: u64,
    /// On-disk records rejected because their model fingerprint differs
    /// from this build (each forced a re-run).
    pub disk_stale: u64,
    /// On-disk records rejected as corrupt/truncated (each forced a
    /// re-run).
    pub disk_corrupt: u64,
    /// Units being simulated *right now* (concurrent duplicate requests
    /// waiting on one of them are not counted — they hold no simulation).
    pub in_flight: u64,
    /// Memoized units whose cached outcome is a measurement *error* (the
    /// paper's too-fast-to-measure exclusions, served as first-class
    /// values).
    pub cached_errors: u64,
    /// Units re-simulated from a recorded launch trace instead of
    /// functional execution (never counted in `simulated`).
    pub trace_replays: u64,
    /// Trace manifests rejected for a model-fingerprint mismatch (each
    /// fell back to a functional run that re-recorded).
    pub trace_stale: u64,
    /// Trace manifests or launch records rejected as corrupt/truncated
    /// (each fell back to a functional run that re-recorded).
    pub trace_corrupt: u64,
}

impl CampaignStats {
    /// Total requests resolved (any source).
    pub fn resolved(&self) -> u64 {
        self.simulated + self.memo_hits + self.disk_hits
    }

    /// Requests served without simulating (any cache layer).
    pub fn hits(&self) -> u64 {
        self.memo_hits + self.disk_hits
    }
}

impl std::fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated={} memo_hits={} disk_hits={} stale={} corrupt={} in_flight={} \
             cached_errors={} trace_replays={} trace_stale={} trace_corrupt={}",
            self.simulated,
            self.memo_hits,
            self.disk_hits,
            self.disk_stale,
            self.disk_corrupt,
            self.in_flight,
            self.cached_errors,
            self.trace_replays,
            self.trace_stale,
            self.trace_corrupt
        )
    }
}

/// Campaign construction options.
#[derive(Default)]
pub struct CampaignConfig {
    /// Directory of the persistent cache. `None` disables persistence
    /// (in-process memoization still applies).
    pub cache_dir: Option<PathBuf>,
    /// Optional sink for `CacheLookup` / `CampaignProgress` events.
    pub telemetry: Option<Arc<dyn TelemetrySink>>,
    /// Directory of the launch-trace database ([`crate::tracedb`]). `None`
    /// disables trace recording and replay. When set, units whose program
    /// has a recorded trace are re-simulated from it (no functional
    /// execution), and cold functional runs record one.
    pub trace_dir: Option<PathBuf>,
}

#[derive(Default)]
struct CampaignState {
    memo: HashMap<String, Result<Measurement, PowerError>>,
    inflight: HashSet<String>,
    /// Memo entries holding an `Err` (maintained at insertion so
    /// [`Campaign::stats`] never scans the memo).
    cached_errors: u64,
}

impl CampaignState {
    fn memoize(&mut self, ckey: String, res: Result<Measurement, PowerError>) {
        if res.is_err() {
            self.cached_errors += 1;
        }
        self.memo.insert(ckey, res);
    }
}

/// The shared measurement campaign: every table and figure generator pulls
/// its readings from one of these, so `repro all` performs each unique
/// simulation exactly once and a warm-cache re-run simulates nothing.
pub struct Campaign {
    cache_dir: Option<PathBuf>,
    telemetry: Option<Arc<dyn TelemetrySink>>,
    fingerprint: u64,
    started: Instant,
    state: Mutex<CampaignState>,
    done: Condvar,
    trace_db: Option<TraceDb>,
    simulated: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    disk_stale: AtomicU64,
    disk_corrupt: AtomicU64,
    trace_replays: AtomicU64,
}

impl Campaign {
    pub fn new(cfg: CampaignConfig) -> Self {
        Self {
            cache_dir: cfg.cache_dir,
            telemetry: cfg.telemetry,
            fingerprint: sim_fingerprint(),
            started: Instant::now(),
            state: Mutex::new(CampaignState::default()),
            done: Condvar::new(),
            trace_db: cfg.trace_dir.map(|d| TraceDb::new(d, sim_fingerprint())),
            simulated: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_stale: AtomicU64::new(0),
            disk_corrupt: AtomicU64::new(0),
            trace_replays: AtomicU64::new(0),
        }
    }

    /// A campaign with in-process memoization only.
    pub fn in_memory() -> Self {
        Self::new(CampaignConfig::default())
    }

    /// Override the model fingerprint. Test hook: lets a test plant a
    /// record that a correctly-fingerprinted campaign must treat as stale.
    #[doc(hidden)]
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = fingerprint;
        self
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CampaignStats {
        let (in_flight, cached_errors) = {
            let g = self.state.lock().unwrap();
            (g.inflight.len() as u64, g.cached_errors)
        };
        CampaignStats {
            simulated: self.simulated.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_stale: self.disk_stale.load(Ordering::Relaxed),
            disk_corrupt: self.disk_corrupt.load(Ordering::Relaxed),
            in_flight,
            cached_errors,
            trace_replays: self.trace_replays.load(Ordering::Relaxed),
            trace_stale: self.trace_db.as_ref().map_or(0, |db| db.stale()),
            trace_corrupt: self.trace_db.as_ref().map_or(0, |db| db.corrupt()),
        }
    }

    fn emit(&self, ev: Event) {
        if let Some(sink) = &self.telemetry {
            sink.record(ev);
        }
    }

    fn wall(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Execute a planned set of requests on the rayon pool, deduplicated
    /// by cache identity. Returns the number of unique units resolved.
    pub fn execute(&self, plan: &[RunRequest]) -> usize {
        let mut seen = HashSet::new();
        let unique: Vec<&RunRequest> = plan
            .iter()
            .filter(|r| seen.insert(canonical_key_parts(r.key, &r.input, r.config.name(), r.rep)))
            .collect();
        let total = unique.len() as u32;
        let progress = AtomicU64::new(0);
        unique.par_iter().for_each(|req| {
            if let Some(b) = registry::by_key(req.key) {
                let _ = self.run(b.as_ref(), &req.input, req.config, req.rep);
            }
            let done = progress.fetch_add(1, Ordering::Relaxed) as u32 + 1;
            self.emit(Event::CampaignProgress {
                t: self.wall(),
                done,
                total,
            });
        });
        unique.len()
    }

    /// One unit of the matrix, memoized: serve from the in-process memo,
    /// else from disk, else simulate (exactly once per process — a second
    /// concurrent request for the same unit waits for the first).
    pub fn run(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        config: GpuConfigKind,
        rep: u64,
    ) -> Result<Measurement, PowerError> {
        let ckey = canonical_key_parts(bench.spec().key, input, config.name(), rep);
        self.resolve_unit(ckey, bench, input, config.device_config(), rep)
    }

    /// One unit of a clock sweep, memoized under the point's cache tag.
    /// Shares every cache layer (and the in-flight dedup) with [`run`]; a
    /// sweep point that coincides with a named configuration still has its
    /// own cache identity (`cfg=sweep:...` vs `cfg=default`), since the
    /// sweep's voltage model is interpolated rather than named.
    pub fn run_sweep_point(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        point: SweepPoint,
        rep: u64,
    ) -> Result<Measurement, PowerError> {
        let ckey = canonical_key_parts(bench.spec().key, input, &point.cache_tag(), rep);
        self.resolve_unit(ckey, bench, input, point.device_config(), rep)
    }

    /// The trace identity of a campaign unit: no clock/ECC configuration,
    /// repetition or seed — one recorded trace serves the whole config x rep
    /// matrix — but bound to the memory model, whose cache-tier counters
    /// are baked into the recorded block costs (see [`crate::tracedb`]).
    fn unit_trace_key(bench: &dyn Benchmark, input: &InputSpec, cfg: &DeviceConfig) -> String {
        trace_key(
            &bench.spec().cache_key(),
            &input.cache_key(),
            &cfg.mem_model.tag(),
        )
    }

    /// Resolve one unit under an explicit device configuration, with the
    /// trace DB (when configured) consulted between the record caches and
    /// functional execution: memo -> disk -> **trace replay** -> simulate
    /// (recording a trace for next time).
    fn resolve_unit(
        &self,
        ckey: String,
        bench: &dyn Benchmark,
        input: &InputSpec,
        cfg: DeviceConfig,
        rep: u64,
    ) -> Result<Measurement, PowerError> {
        let key = bench.spec().key;
        self.resolve(
            ckey,
            || match &self.trace_db {
                Some(db) => {
                    let (res, stored) =
                        measure_with_device_config_recording(bench, input, cfg.clone(), rep);
                    if let Some(st) = stored {
                        db.store(&Self::unit_trace_key(bench, input, &cfg), &st);
                    }
                    res
                }
                None => measure_with_device_config(bench, input, cfg.clone(), rep),
            },
            || {
                let db = self.trace_db.as_ref()?;
                let st = db.load(&Self::unit_trace_key(bench, input, &cfg))?;
                Some(measure_from_trace(key, input, cfg.clone(), rep, &st))
            },
        )
    }

    /// A sweep-point reading at the requested repetition count, mirroring
    /// [`Campaign::reading`]'s median-of-three / quick split.
    pub fn sweep_reading(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        point: SweepPoint,
        reps: u64,
    ) -> Result<Reading, PowerError> {
        if reps >= 3 {
            let runs = [
                self.run_sweep_point(bench, input, point, 0)?,
                self.run_sweep_point(bench, input, point, 1)?,
                self.run_sweep_point(bench, input, point, 2)?,
            ];
            Ok(combine_median3(&runs).reading)
        } else {
            self.run_sweep_point(bench, input, point, 0)
                .map(|m| m.reading)
        }
    }

    /// Resolve every point of a sweep grid on the rayon pool. Returns
    /// `(point, outcome)` in grid order; unmeasurable points carry their
    /// error as a value (the 324-MHz-style exclusions survive a sweep).
    #[allow(clippy::type_complexity)]
    pub fn sweep(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        grid: &[SweepPoint],
        reps: u64,
    ) -> Vec<(SweepPoint, Result<Reading, PowerError>)> {
        let total = grid.len() as u32;
        let progress = AtomicU64::new(0);
        grid.par_iter()
            .map(|&p| {
                let res = self.sweep_reading(bench, input, p, reps);
                let done = progress.fetch_add(1, Ordering::Relaxed) as u32 + 1;
                self.emit(Event::CampaignProgress {
                    t: self.wall(),
                    done,
                    total,
                });
                (p, res)
            })
            .collect()
    }

    /// The shared memo/disk/replay/simulate resolution path behind [`run`]
    /// and [`run_sweep_point`]. `replay` is tried after both record caches
    /// miss and before `simulate`; when it yields a result the unit counts
    /// as a trace replay, not a simulation, but is persisted and memoized
    /// identically (so a replayed unit warms the v2 record cache with a
    /// record bit-identical to a live run's).
    fn resolve(
        &self,
        ckey: String,
        simulate: impl FnOnce() -> Result<Measurement, PowerError>,
        replay: impl FnOnce() -> Option<Result<Measurement, PowerError>>,
    ) -> Result<Measurement, PowerError> {
        {
            let mut g = self.state.lock().unwrap();
            loop {
                if let Some(v) = g.memo.get(&ckey) {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    self.emit(Event::CacheLookup {
                        t: self.wall(),
                        key: ckey.clone(),
                        hit: true,
                        disk: false,
                    });
                    return v.clone();
                }
                if g.inflight.contains(&ckey) {
                    g = self.done.wait(g).unwrap();
                } else {
                    break;
                }
            }
            // Disk probe under the lock: records are tiny, and probing
            // here keeps hit accounting race-free.
            if let Some(rec) = self.load_record(&ckey) {
                g.memoize(ckey.clone(), rec.clone());
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.emit(Event::CacheLookup {
                    t: self.wall(),
                    key: ckey.clone(),
                    hit: true,
                    disk: true,
                });
                return rec;
            }
            g.inflight.insert(ckey.clone());
        }
        // Replay or simulate outside the lock so the pool keeps stealing
        // work. A trace replay re-simulates timing/power from the recorded
        // launch stream — no functional execution — and is counted apart.
        let res = match replay() {
            Some(res) => {
                self.trace_replays.fetch_add(1, Ordering::Relaxed);
                res
            }
            None => {
                let res = simulate();
                self.simulated.fetch_add(1, Ordering::Relaxed);
                res
            }
        };
        self.store_record(&ckey, &res);
        let mut g = self.state.lock().unwrap();
        g.memoize(ckey.clone(), res.clone());
        g.inflight.remove(&ckey);
        drop(g);
        self.done.notify_all();
        self.emit(Event::CacheLookup {
            t: self.wall(),
            key: ckey,
            hit: false,
            disk: false,
        });
        res
    }

    /// The paper's median-of-three, derived from the three cached reps.
    /// Bit-identical to [`crate::experiment::measure_median3`]: both feed
    /// the same per-rep measurements through [`combine_median3`].
    pub fn median3(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        config: GpuConfigKind,
    ) -> Result<MedianMeasurement, PowerError> {
        let runs = [
            self.run(bench, input, config, 0)?,
            self.run(bench, input, config, 1)?,
            self.run(bench, input, config, 2)?,
        ];
        Ok(combine_median3(&runs))
    }

    /// A reading at the requested repetition count: the median-of-three
    /// methodology, or the single rep-0 run in `--quick` mode.
    pub fn reading(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        config: GpuConfigKind,
        reps: u64,
    ) -> Result<Reading, PowerError> {
        if reps >= 3 {
            self.median3(bench, input, config).map(|m| m.reading)
        } else {
            self.run(bench, input, config, 0).map(|m| m.reading)
        }
    }

    /// Like [`Campaign::reading`] but with the ancillary fields (items,
    /// counters, variability) the tables need.
    pub fn measurement(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        config: GpuConfigKind,
        reps: u64,
    ) -> Result<MedianMeasurement, PowerError> {
        if reps >= 3 {
            self.median3(bench, input, config)
        } else {
            self.run(bench, input, config, 0)
                .map(|m| MedianMeasurement {
                    reading: m.reading,
                    items: m.items,
                    counters: m.counters,
                    time_variability_pct: 0.0,
                    energy_variability_pct: 0.0,
                    board_energy_j: m.board_energy_j,
                    trace_end_s: m.trace_end_s,
                    kernel_time_s: m.kernel_time_s,
                    sampled_energy_j: m.sampled_energy_j,
                })
        }
    }

    // -- persistence --------------------------------------------------------

    fn record_path(&self, ckey: &str) -> Option<PathBuf> {
        self.cache_dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.camp", fnv1a64(ckey.as_bytes()))))
    }

    /// Load one record, verifying fingerprint and full key. Any failure is
    /// a miss: stale and corrupt entries bump their counters and will be
    /// overwritten by the re-run's store.
    fn load_record(&self, ckey: &str) -> Option<Result<Measurement, PowerError>> {
        let path = self.record_path(ckey)?;
        let body = std::fs::read_to_string(&path).ok()?;
        match parse_record(&body) {
            Some((fp, key, res)) => {
                if key != ckey {
                    // Hash collision or hand-edited file: treat as absent.
                    None
                } else if fp != self.fingerprint {
                    self.disk_stale.fetch_add(1, Ordering::Relaxed);
                    None
                } else {
                    Some(res)
                }
            }
            None => {
                self.disk_corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist one record. Best-effort: an unwritable cache directory
    /// degrades to memo-only operation. The write goes through a unique
    /// temporary file + rename so concurrent processes never observe a
    /// torn record.
    fn store_record(&self, ckey: &str, res: &Result<Measurement, PowerError>) {
        let Some(path) = self.record_path(ckey) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let body = format_record(self.fingerprint, ckey, res);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, body).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

// ---------------------------------------------------------------------------
// Record format (hand-rolled: the workspace builds offline, serde is a shim)
// ---------------------------------------------------------------------------

pub(crate) fn fbits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

pub(crate) fn parse_fbits(tok: &str) -> Option<f64> {
    u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
}

/// Render one record. Floats are stored as their exact bit patterns so a
/// round-trip through the cache is bit-identical to the live measurement.
fn format_record(fingerprint: u64, ckey: &str, res: &Result<Measurement, PowerError>) -> String {
    let mut s = String::new();
    s.push_str(RECORD_MAGIC);
    s.push('\n');
    s.push_str(&format!("fingerprint {fingerprint:016x}\n"));
    s.push_str(&format!("key {ckey}\n"));
    match res {
        Ok(m) => {
            let r = &m.reading;
            s.push_str("status ok\n");
            s.push_str(&format!(
                "reading {} {} {} {} {} {}\n",
                fbits(r.active_runtime_s),
                fbits(r.energy_j),
                fbits(r.avg_power_w),
                fbits(r.threshold_w),
                fbits(r.idle_w),
                r.n_active_samples
            ));
            s.push_str(&format!("checksum {}\n", fbits(m.checksum)));
            match &m.items {
                Some(it) => s.push_str(&format!("items {} {}\n", it.vertices, it.edges)),
                None => s.push_str("items none\n"),
            }
            let c = &m.counters;
            s.push_str(&format!(
                "counters {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                c.blocks,
                c.threads,
                c.warps,
                fbits(c.issue_cycles),
                fbits(c.dram_bytes),
                fbits(c.useful_bytes),
                fbits(c.transactions),
                fbits(c.ideal_transactions),
                fbits(c.atomics),
                fbits(c.lane_ops[0]),
                fbits(c.lane_ops[1]),
                fbits(c.lane_ops[2]),
                fbits(c.lane_ops[3]),
                fbits(c.lane_ops[4]),
                fbits(c.lane_ops[5]),
                fbits(c.lane_ops[6]),
                fbits(c.shared_accesses),
                fbits(c.bank_conflict_cycles),
                fbits(c.barriers),
                fbits(c.slots),
                fbits(c.active_lanes),
                fbits(c.l1_hits),
                fbits(c.l2_hits),
                fbits(c.dram_transactions),
                fbits(c.mshr_merges),
                0 // reserved
            ));
            s.push_str(&format!(
                "board {} {} {}\n",
                fbits(m.board_energy_j),
                fbits(m.trace_end_s),
                fbits(m.kernel_time_s)
            ));
            s.push_str(&format!("sampled {}", m.sampled_energy_j.len()));
            for &e in &m.sampled_energy_j {
                s.push(' ');
                s.push_str(&fbits(e));
            }
            s.push('\n');
        }
        Err(PowerError::InsufficientSamples(n)) => {
            s.push_str("status err\n");
            s.push_str(&format!("error insufficient {n}\n"));
        }
        Err(PowerError::NoSamples) => {
            s.push_str("status err\n");
            s.push_str("error nosamples\n");
        }
    }
    s.push_str(RECORD_END);
    s.push('\n');
    s
}

/// Parse one record back. `None` on any malformation — including a missing
/// terminator line, which is how a truncated write is detected.
fn parse_record(body: &str) -> Option<(u64, String, Result<Measurement, PowerError>)> {
    let mut lines = body.lines();
    if lines.next()? != RECORD_MAGIC {
        return None;
    }
    let fp_line = lines.next()?;
    let fp = u64::from_str_radix(fp_line.strip_prefix("fingerprint ")?, 16).ok()?;
    let key = lines.next()?.strip_prefix("key ")?.to_string();
    let status = lines.next()?;
    let res: Result<Measurement, PowerError> = match status {
        "status ok" => {
            let rtoks: Vec<&str> = lines
                .next()?
                .strip_prefix("reading ")?
                .split_whitespace()
                .collect();
            if rtoks.len() != 6 {
                return None;
            }
            let reading = Reading {
                active_runtime_s: parse_fbits(rtoks[0])?,
                energy_j: parse_fbits(rtoks[1])?,
                avg_power_w: parse_fbits(rtoks[2])?,
                threshold_w: parse_fbits(rtoks[3])?,
                idle_w: parse_fbits(rtoks[4])?,
                n_active_samples: rtoks[5].parse().ok()?,
            };
            let checksum = parse_fbits(lines.next()?.strip_prefix("checksum ")?)?;
            let items_line = lines.next()?.strip_prefix("items ")?;
            let items = if items_line == "none" {
                None
            } else {
                let mut it = items_line.split_whitespace();
                Some(ItemCounts {
                    vertices: it.next()?.parse().ok()?,
                    edges: it.next()?.parse().ok()?,
                })
            };
            let ctoks: Vec<&str> = lines
                .next()?
                .strip_prefix("counters ")?
                .split_whitespace()
                .collect();
            if ctoks.len() != 26 {
                return None;
            }
            let mut counters = KernelCounters {
                blocks: ctoks[0].parse().ok()?,
                threads: ctoks[1].parse().ok()?,
                warps: ctoks[2].parse().ok()?,
                issue_cycles: parse_fbits(ctoks[3])?,
                dram_bytes: parse_fbits(ctoks[4])?,
                useful_bytes: parse_fbits(ctoks[5])?,
                transactions: parse_fbits(ctoks[6])?,
                ideal_transactions: parse_fbits(ctoks[7])?,
                atomics: parse_fbits(ctoks[8])?,
                ..Default::default()
            };
            for i in 0..7 {
                counters.lane_ops[i] = parse_fbits(ctoks[9 + i])?;
            }
            counters.shared_accesses = parse_fbits(ctoks[16])?;
            counters.bank_conflict_cycles = parse_fbits(ctoks[17])?;
            counters.barriers = parse_fbits(ctoks[18])?;
            counters.slots = parse_fbits(ctoks[19])?;
            counters.active_lanes = parse_fbits(ctoks[20])?;
            counters.l1_hits = parse_fbits(ctoks[21])?;
            counters.l2_hits = parse_fbits(ctoks[22])?;
            counters.dram_transactions = parse_fbits(ctoks[23])?;
            counters.mshr_merges = parse_fbits(ctoks[24])?;
            let btoks: Vec<&str> = lines
                .next()?
                .strip_prefix("board ")?
                .split_whitespace()
                .collect();
            if btoks.len() != 3 {
                return None;
            }
            let mut stoks = lines.next()?.strip_prefix("sampled ")?.split_whitespace();
            let n: usize = stoks.next()?.parse().ok()?;
            let sampled_energy_j: Vec<f64> = stoks.map(parse_fbits).collect::<Option<_>>()?;
            if sampled_energy_j.len() != n {
                return None;
            }
            Ok(Measurement {
                reading,
                checksum,
                items,
                counters,
                board_energy_j: parse_fbits(btoks[0])?,
                trace_end_s: parse_fbits(btoks[1])?,
                kernel_time_s: parse_fbits(btoks[2])?,
                sampled_energy_j,
            })
        }
        "status err" => {
            let err_line = lines.next()?.strip_prefix("error ")?;
            if err_line == "nosamples" {
                Err(PowerError::NoSamples)
            } else {
                let n = err_line.strip_prefix("insufficient ")?.parse().ok()?;
                Err(PowerError::InsufficientSamples(n))
            }
        }
        _ => return None,
    };
    if lines.next()? != RECORD_END {
        return None;
    }
    Some((fp, key, res))
}

/// Remove every record in `dir` (used by `repro --no-cache` semantics is
/// *not* this — this is an explicit purge helper for tooling and tests).
pub fn purge_cache(dir: &Path) -> std::io::Result<usize> {
    let mut removed = 0;
    if dir.is_dir() {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().map(|e| e == "camp").unwrap_or(false) {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::measure_median3;
    use std::sync::atomic::AtomicU32;

    static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch cache directory per test (no tempfile dependency).
    fn scratch_dir(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "gpgpu-campaign-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn disk_campaign(dir: &Path) -> Campaign {
        Campaign::new(CampaignConfig {
            cache_dir: Some(dir.to_path_buf()),
            ..CampaignConfig::default()
        })
    }

    fn readings_bit_identical(a: &Reading, b: &Reading) -> bool {
        a.active_runtime_s.to_bits() == b.active_runtime_s.to_bits()
            && a.energy_j.to_bits() == b.energy_j.to_bits()
            && a.avg_power_w.to_bits() == b.avg_power_w.to_bits()
            && a.threshold_w.to_bits() == b.threshold_w.to_bits()
            && a.idle_w.to_bits() == b.idle_w.to_bits()
            && a.n_active_samples == b.n_active_samples
    }

    #[test]
    fn campaign_median3_matches_direct_measurement_bitwise() {
        let dir = scratch_dir("roundtrip");
        let b = registry::by_key("sgemm").unwrap();
        let input = &b.inputs()[0];
        let direct = measure_median3(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();

        // Cold campaign: simulates, persists.
        let c1 = disk_campaign(&dir);
        let m1 = c1
            .median3(b.as_ref(), input, GpuConfigKind::Default)
            .unwrap();
        assert!(readings_bit_identical(&m1.reading, &direct.reading));
        assert_eq!(m1.counters, direct.counters);
        assert_eq!(c1.stats().simulated, 3);

        // Warm campaign, same directory: serves the records from disk
        // without touching the simulator, bit-identical.
        let before = kepler_sim::devices_created();
        let c2 = disk_campaign(&dir);
        let m2 = c2
            .median3(b.as_ref(), input, GpuConfigKind::Default)
            .unwrap();
        assert_eq!(
            kepler_sim::devices_created(),
            before,
            "cache hit must skip simulation"
        );
        let s = c2.stats();
        assert_eq!((s.simulated, s.disk_hits), (0, 3), "{s}");
        assert!(readings_bit_identical(&m2.reading, &direct.reading));
        assert_eq!(m2.counters, direct.counters);
        assert_eq!(
            m2.time_variability_pct.to_bits(),
            direct.time_variability_pct.to_bits()
        );
        assert_eq!(
            m2.energy_variability_pct.to_bits(),
            direct.energy_variability_pct.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_hit_skips_simulation_and_is_counted() {
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let c = Campaign::in_memory();
        let m1 = c.run(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert_eq!(c.stats().simulated, 1);
        let before = kepler_sim::devices_created();
        let m2 = c.run(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert_eq!(kepler_sim::devices_created(), before);
        assert_eq!(c.stats().memo_hits, 1);
        assert!(readings_bit_identical(&m1.reading, &m2.reading));
    }

    #[test]
    fn stale_fingerprint_forces_rerun() {
        let dir = scratch_dir("stale");
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        // Plant a record under a deliberately different fingerprint.
        let old = disk_campaign(&dir).with_fingerprint(0xDEAD_BEEF);
        old.run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        assert_eq!(old.stats().simulated, 1);
        // A correctly-fingerprinted campaign must re-run, not trust it.
        let c = disk_campaign(&dir);
        c.run(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        let s = c.stats();
        assert_eq!((s.simulated, s.disk_hits, s.disk_stale), (1, 0, 1), "{s}");
        // ... and its store repaired the record for the next campaign.
        let c2 = disk_campaign(&dir);
        c2.run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        assert_eq!(c2.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_record_forces_clean_rerun() {
        let dir = scratch_dir("truncated");
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let c1 = disk_campaign(&dir);
        let m1 = c1
            .run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        // Truncate the single record on disk (simulates a torn write that
        // bypassed the tmp+rename path, e.g. a full disk).
        let files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(files.len(), 1);
        let body = std::fs::read_to_string(&files[0]).unwrap();
        std::fs::write(&files[0], &body[..body.len() / 2]).unwrap();
        let c2 = disk_campaign(&dir);
        let m2 = c2
            .run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        let s = c2.stats();
        assert_eq!((s.simulated, s.disk_hits, s.disk_corrupt), (1, 0, 1), "{s}");
        assert!(readings_bit_identical(&m1.reading, &m2.reading));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn measurement_errors_are_cached_too() {
        // lbfs-wlw on its largest input is the paper's "too fast to
        // measure" case; the campaign must not re-simulate it on every
        // request (the 324-MHz sweep would otherwise never warm up).
        let dir = scratch_dir("errors");
        let b = registry::by_key("lbfs-wlw").unwrap();
        let input = b.inputs().last().unwrap().clone();
        let c1 = disk_campaign(&dir);
        let e1 = c1
            .run(b.as_ref(), &input, GpuConfigKind::Default, 0)
            .unwrap_err();
        assert_eq!(c1.stats().simulated, 1);
        let c2 = disk_campaign(&dir);
        let before = kepler_sim::devices_created();
        let e2 = c2
            .run(b.as_ref(), &input, GpuConfigKind::Default, 0)
            .unwrap_err();
        assert_eq!(kepler_sim::devices_created(), before);
        assert_eq!(c2.stats().disk_hits, 1);
        assert_eq!(e1, e2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execute_deduplicates_the_plan() {
        let b = registry::by_key("sten").unwrap();
        let input = b.inputs()[0].clone();
        let c = Campaign::in_memory();
        let req = RunRequest {
            key: "sten",
            input,
            config: GpuConfigKind::Default,
            rep: 0,
        };
        // The same unit requested three times plans down to one run.
        let unique = c.execute(&[req.clone(), req.clone(), req]);
        assert_eq!(unique, 1);
        assert_eq!(c.stats().simulated, 1);
    }

    #[test]
    fn flat_and_cached_units_never_collide_in_any_cache_layer() {
        let dir = scratch_dir("memmodel");
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        // The memory model is spelled out in the canonical identity.
        let kf = canonical_key_parts("sten", input, GpuConfigKind::Default.name(), 0);
        let kc = canonical_key_parts("sten", input, GpuConfigKind::Cache.name(), 0);
        assert!(kf.contains("|mem=flat|"), "{kf}");
        assert!(kc.contains("|mem=cache-"), "{kc}");
        assert_ne!(kf, kc);
        // Cold: both models simulate — no memo/disk collision.
        let c1 = disk_campaign(&dir);
        let mf = c1
            .run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        let mc = c1.run(b.as_ref(), input, GpuConfigKind::Cache, 0).unwrap();
        assert_eq!(c1.stats().simulated, 2, "{}", c1.stats());
        assert_eq!(
            mf.counters.dram_transactions + mf.counters.mshr_merges,
            0.0,
            "flat model has no cache tiers"
        );
        assert!(
            mc.counters.dram_transactions > 0.0 && mc.counters.mshr_merges > 0.0,
            "cache model classifies the access stream: {:?}",
            mc.counters
        );
        // Warm: both served from disk, bit-identical, still distinct.
        let c2 = disk_campaign(&dir);
        let wf = c2
            .run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        let wc = c2.run(b.as_ref(), input, GpuConfigKind::Cache, 0).unwrap();
        let s = c2.stats();
        assert_eq!((s.simulated, s.disk_hits), (0, 2), "{s}");
        assert!(readings_bit_identical(&wf.reading, &mf.reading));
        assert!(readings_bit_identical(&wc.reading, &mc.reading));
        assert_eq!(wc.counters, mc.counters);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_format_rejects_malformed_bodies() {
        let m = Measurement {
            reading: Reading {
                active_runtime_s: 1.5,
                energy_j: 150.0,
                avg_power_w: 100.0,
                threshold_w: 55.0,
                idle_w: 25.0,
                n_active_samples: 15,
            },
            checksum: 42.0,
            items: Some(ItemCounts {
                vertices: 7,
                edges: 11,
            }),
            counters: Default::default(),
            board_energy_j: 812.5,
            trace_end_s: 14.25,
            kernel_time_s: 5.125,
            sampled_energy_j: vec![810.0, 813.5, 812.0],
        };
        let body = format_record(0xABCD, "v2|k|i|cfg=default|rep=0|seed=0", &Ok(m.clone()));
        let (fp, key, res) = parse_record(&body).unwrap();
        assert_eq!(fp, 0xABCD);
        assert_eq!(key, "v2|k|i|cfg=default|rep=0|seed=0");
        let back = res.unwrap();
        assert!(readings_bit_identical(&back.reading, &m.reading));
        assert_eq!(back.items, m.items);
        assert_eq!(back.board_energy_j.to_bits(), m.board_energy_j.to_bits());
        assert_eq!(back.trace_end_s.to_bits(), m.trace_end_s.to_bits());
        assert_eq!(back.kernel_time_s.to_bits(), m.kernel_time_s.to_bits());
        assert_eq!(back.sampled_energy_j, m.sampled_energy_j);
        // Truncation at any line boundary is rejected.
        let lines: Vec<&str> = body.lines().collect();
        for cut in 1..lines.len() {
            let partial = lines[..cut].join("\n");
            assert!(parse_record(&partial).is_none(), "cut at {cut} accepted");
        }
        // Error records round-trip as well.
        let err = format_record(1, "k", &Err(PowerError::InsufficientSamples(4)));
        assert_eq!(
            parse_record(&err).unwrap().2.unwrap_err(),
            PowerError::InsufficientSamples(4)
        );
        assert!(parse_record("garbage").is_none());
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(sim_fingerprint(), sim_fingerprint());
        assert_ne!(sim_fingerprint(), 0);
    }

    /// A sweep point on a driver ladder setting reproduces that setting's
    /// voltages exactly, so its measurement is bit-identical to the named
    /// configuration's.
    #[test]
    fn sweep_point_on_ladder_matches_named_config_bitwise() {
        let p = SweepPoint {
            core_mhz: 614.0,
            mem_mhz: 2600.0,
        };
        assert_eq!(p.clock_config(), ClockConfig::k20_614());
        let low = SweepPoint {
            core_mhz: 324.0,
            mem_mhz: 324.0,
        };
        assert_eq!(low.clock_config(), ClockConfig::k20_324());

        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let c = Campaign::in_memory();
        let named = c.run(b.as_ref(), input, GpuConfigKind::C614, 0).unwrap();
        let swept = c.run_sweep_point(b.as_ref(), input, p, 0).unwrap();
        assert!(readings_bit_identical(&named.reading, &swept.reading));
        // Distinct cache identities: both simulated despite equal configs.
        assert_eq!(c.stats().simulated, 2);
    }

    /// Interpolated voltages stay monotone and clamped inside the ladder.
    #[test]
    fn sweep_voltage_interpolation_is_monotone_and_clamped() {
        let v = |mhz| {
            SweepPoint {
                core_mhz: mhz,
                mem_mhz: 2600.0,
            }
            .clock_config()
            .core_vrel
        };
        assert_eq!(v(324.0), 0.85);
        assert_eq!(v(758.0), 1.03);
        let mut last = 0.0;
        for mhz in [324.0, 400.0, 500.0, 614.0, 640.0, 666.0, 705.0, 758.0] {
            let cur = v(mhz);
            assert!(cur >= last, "vrel not monotone at {mhz}");
            last = cur;
        }
        // Midpoint of the 324..614 segment.
        let mid = v(469.0);
        assert!((mid - 0.9).abs() < 1e-12, "mid {mid}");
    }

    #[test]
    fn sweep_grid_deduplicates_and_orders() {
        let g = sweep_grid(&[705.0, 614.0, 705.0], &[2600.0, 2600.0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].core_mhz, 705.0);
        assert_eq!(g[1].core_mhz, 614.0);
        assert!(g[0].is_valid());
        assert!(!SweepPoint {
            core_mhz: 100.0,
            mem_mhz: 2600.0
        }
        .is_valid());
        assert!(!SweepPoint {
            core_mhz: f64::NAN,
            mem_mhz: 2600.0
        }
        .is_valid());
    }

    #[test]
    fn pareto_front_flags_non_dominated_points() {
        // (runtime, energy): a dominates c; b trades off against a.
        let pts = [(1.0, 10.0), (2.0, 5.0), (3.0, 12.0), (1.0, 10.0)];
        let flags = pareto_front(&pts);
        // Duplicates of a frontier point both survive (neither strictly
        // dominates the other).
        assert_eq!(flags, vec![true, true, false, true]);
        assert_eq!(pareto_front(&[]), Vec::<bool>::new());
    }

    /// Sweep records persist and round-trip like named-config records.
    #[test]
    fn sweep_records_round_trip_through_disk_cache() {
        let dir = scratch_dir("sweep");
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let p = SweepPoint {
            core_mhz: 500.0,
            mem_mhz: 2600.0,
        };
        let c1 = disk_campaign(&dir);
        let m1 = c1.run_sweep_point(b.as_ref(), input, p, 0).unwrap();
        assert_eq!(c1.stats().simulated, 1);
        let before = kepler_sim::devices_created();
        let c2 = disk_campaign(&dir);
        let m2 = c2.run_sweep_point(b.as_ref(), input, p, 0).unwrap();
        assert_eq!(kepler_sim::devices_created(), before);
        assert_eq!(c2.stats().disk_hits, 1);
        assert!(readings_bit_identical(&m1.reading, &m2.reading));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `stats()` exposes the cached-error count and the live in-flight
    /// gauge (zero at rest).
    #[test]
    fn stats_report_cached_errors_and_in_flight() {
        let b = registry::by_key("lbfs-wlw").unwrap();
        let input = b.inputs().last().unwrap().clone();
        let c = Campaign::in_memory();
        assert_eq!(c.stats().in_flight, 0);
        assert_eq!(c.stats().cached_errors, 0);
        let _ = c
            .run(b.as_ref(), &input, GpuConfigKind::Default, 0)
            .unwrap_err();
        let s = c.stats();
        assert_eq!(s.cached_errors, 1);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.simulated, 1);
    }
}
