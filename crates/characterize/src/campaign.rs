//! The measurement campaign engine.
//!
//! The paper's evaluation is **one measurement matrix** — every program ×
//! input × clock/ECC configuration × repetition — from which every table
//! and figure is derived. Before this module existed, each artifact
//! generator re-simulated its own overlapping slice of that matrix (the
//! default configuration alone was swept four times by `repro all`). A
//! [`Campaign`] instead:
//!
//! * **plans** — collects the deduplicated run matrix requested by any set
//!   of artifacts ([`plan_artifacts`] / the `*_runs()` planners in
//!   [`crate::tables`] and [`crate::figures`]);
//! * **executes** — runs the unique (workload, input, config, rep) units
//!   on the rayon work-stealing pool, exactly once per process, with
//!   in-flight deduplication so even unplanned concurrent requests cannot
//!   double-simulate;
//! * **memoizes** — results (including *measurement failures*, the paper's
//!   324-MHz exclusions) are kept in-process and served to every artifact;
//! * **persists** — each unit is written to a content-addressed on-disk
//!   cache keyed by `(workload key, input, config, rep, seed, sim-version
//!   fingerprint)` in a versioned plain-text record. Corrupt or truncated
//!   entries and records from an older simulator model are re-run, never
//!   fatal.
//!
//! Median-of-three readings are *derived* from the three cached single
//! runs via [`combine_median3`], so the rep is the cache unit and a quick
//! (1-rep) figure shares its rep-0 simulation with the full methodology.

use crate::configs::GpuConfigKind;
use crate::experiment::{combine_median3, measure, run_seed, Measurement, MedianMeasurement};
use gpower::{PowerError, Reading};
use kepler_sim::KernelCounters;
use rayon::prelude::*;
use sim_telemetry::{Event, TelemetrySink};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use workloads::bench::{Benchmark, InputSpec, ItemCounts};
use workloads::registry;

/// Version prefix of the canonical cache key and the on-disk record
/// layout. Bump when the record format changes shape.
const FORMAT_VERSION: &str = "v1";
const RECORD_MAGIC: &str = "gpgpu-campaign v1";
const RECORD_END: &str = "end gpgpu-campaign";

/// 64-bit FNV-1a (the *correct* prime — see the `run_seed` fix).
fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of the simulation + measurement model this build produces.
/// Any change that alters simulated numbers bumps one of the component
/// version tags, which invalidates every persisted record at load time.
pub fn sim_fingerprint() -> u64 {
    let ident = format!(
        "{}|{}|characterize/{}",
        kepler_sim::SIM_VERSION,
        gpower::MEASUREMENT_VERSION,
        env!("CARGO_PKG_VERSION"),
    );
    fnv1a64(ident.as_bytes())
}

/// One unit of the measurement matrix: a single repetition of one program
/// input under one configuration.
#[derive(Debug, Clone)]
pub struct RunRequest {
    pub key: &'static str,
    pub input: InputSpec,
    pub config: GpuConfigKind,
    pub rep: u64,
}

/// The artifacts whose data comes from the measurement matrix. Table 1 and
/// Figure 1 are excluded on purpose: the inventory needs no measurements
/// and the sample power profile uses its own fixed-seed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    Table2,
    Table3,
    Table4,
    Fig2,
    Fig3,
    Fig4,
    Fig5,
    Fig6,
    TrDetail,
}

impl Artifact {
    /// Parse a `repro`-style artifact selector. Returns `None` for
    /// artifacts that need no measurements (`table1`, `fig1`) and unknown
    /// names alike.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "table2" => Artifact::Table2,
            "table3" => Artifact::Table3,
            "table4" => Artifact::Table4,
            "fig2" => Artifact::Fig2,
            "fig3" => Artifact::Fig3,
            "fig4" => Artifact::Fig4,
            "fig5" => Artifact::Fig5,
            "fig6" => Artifact::Fig6,
            "trdata" => Artifact::TrDetail,
            _ => return None,
        })
    }

    /// The runs this artifact needs at the given repetition count.
    pub fn runs(&self, reps: u64) -> Vec<RunRequest> {
        match self {
            // Table 2's variability is meaningless without all three reps.
            Artifact::Table2 => crate::tables::table2_runs(),
            Artifact::Table3 => crate::tables::table3_runs(reps),
            Artifact::Table4 => crate::tables::table4_runs(reps),
            Artifact::Fig2 => {
                crate::figures::ratio_figure_runs(GpuConfigKind::Default, GpuConfigKind::C614, reps)
            }
            Artifact::Fig3 => {
                crate::figures::ratio_figure_runs(GpuConfigKind::C614, GpuConfigKind::C324, reps)
            }
            Artifact::Fig4 => {
                crate::figures::ratio_figure_runs(GpuConfigKind::Default, GpuConfigKind::Ecc, reps)
            }
            Artifact::Fig5 => crate::figures::input_power_figure_runs(reps),
            Artifact::Fig6 => crate::figures::power_range_figure_runs(reps),
            Artifact::TrDetail => crate::tables::tr_detail_runs(reps),
        }
    }
}

/// Collect the deduplicated run matrix of a set of artifacts. Requests are
/// deduplicated by canonical cache key, preserving first-seen order.
pub fn plan_artifacts(artifacts: &[Artifact], reps: u64) -> Vec<RunRequest> {
    let mut seen = HashSet::new();
    let mut plan = Vec::new();
    for a in artifacts {
        for req in a.runs(reps) {
            if seen.insert(canonical_key_parts(
                req.key, &req.input, req.config, req.rep,
            )) {
                plan.push(req);
            }
        }
    }
    plan
}

/// Rep indices a `reps` request expands to: the paper's three repetitions,
/// or the single rep-0 run in `--quick` mode.
pub(crate) fn rep_indices(reps: u64) -> std::ops::Range<u64> {
    if reps >= 3 {
        0..3
    } else {
        0..1
    }
}

/// The canonical identity of one run unit, *without* the model
/// fingerprint (the fingerprint is stored inside the record so an
/// outdated entry is observed as stale rather than silently orphaned).
fn canonical_key_parts(key: &str, input: &InputSpec, config: GpuConfigKind, rep: u64) -> String {
    // The seed is derived from (key, input, rep), but it is part of the
    // paper's methodology, so it is folded into the identity explicitly:
    // a change to the seeding scheme must invalidate cached measurements.
    let seed = run_seed(key, input.name, rep);
    let spec_key = registry::by_key(key)
        .map(|b| b.spec().cache_key())
        .unwrap_or_else(|| key.to_string());
    format!(
        "{FORMAT_VERSION}|{spec_key}|{}|cfg={}|rep={rep}|seed={seed:016x}",
        input.cache_key(),
        config.name(),
    )
}

/// Counter snapshot of a campaign's cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Simulations actually executed by this process.
    pub simulated: u64,
    /// Requests served from the in-process memo.
    pub memo_hits: u64,
    /// Requests served from the on-disk cache.
    pub disk_hits: u64,
    /// On-disk records rejected because their model fingerprint differs
    /// from this build (each forced a re-run).
    pub disk_stale: u64,
    /// On-disk records rejected as corrupt/truncated (each forced a
    /// re-run).
    pub disk_corrupt: u64,
}

impl CampaignStats {
    /// Total requests resolved (any source).
    pub fn resolved(&self) -> u64 {
        self.simulated + self.memo_hits + self.disk_hits
    }
}

impl std::fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated={} memo_hits={} disk_hits={} stale={} corrupt={}",
            self.simulated, self.memo_hits, self.disk_hits, self.disk_stale, self.disk_corrupt
        )
    }
}

/// Campaign construction options.
#[derive(Default)]
pub struct CampaignConfig {
    /// Directory of the persistent cache. `None` disables persistence
    /// (in-process memoization still applies).
    pub cache_dir: Option<PathBuf>,
    /// Optional sink for `CacheLookup` / `CampaignProgress` events.
    pub telemetry: Option<Arc<dyn TelemetrySink>>,
}

#[derive(Default)]
struct CampaignState {
    memo: HashMap<String, Result<Measurement, PowerError>>,
    inflight: HashSet<String>,
}

/// The shared measurement campaign: every table and figure generator pulls
/// its readings from one of these, so `repro all` performs each unique
/// simulation exactly once and a warm-cache re-run simulates nothing.
pub struct Campaign {
    cache_dir: Option<PathBuf>,
    telemetry: Option<Arc<dyn TelemetrySink>>,
    fingerprint: u64,
    started: Instant,
    state: Mutex<CampaignState>,
    done: Condvar,
    simulated: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    disk_stale: AtomicU64,
    disk_corrupt: AtomicU64,
}

impl Campaign {
    pub fn new(cfg: CampaignConfig) -> Self {
        Self {
            cache_dir: cfg.cache_dir,
            telemetry: cfg.telemetry,
            fingerprint: sim_fingerprint(),
            started: Instant::now(),
            state: Mutex::new(CampaignState::default()),
            done: Condvar::new(),
            simulated: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_stale: AtomicU64::new(0),
            disk_corrupt: AtomicU64::new(0),
        }
    }

    /// A campaign with in-process memoization only.
    pub fn in_memory() -> Self {
        Self::new(CampaignConfig::default())
    }

    /// Override the model fingerprint. Test hook: lets a test plant a
    /// record that a correctly-fingerprinted campaign must treat as stale.
    #[doc(hidden)]
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = fingerprint;
        self
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CampaignStats {
        CampaignStats {
            simulated: self.simulated.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_stale: self.disk_stale.load(Ordering::Relaxed),
            disk_corrupt: self.disk_corrupt.load(Ordering::Relaxed),
        }
    }

    fn emit(&self, ev: Event) {
        if let Some(sink) = &self.telemetry {
            sink.record(ev);
        }
    }

    fn wall(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Execute a planned set of requests on the rayon pool, deduplicated
    /// by cache identity. Returns the number of unique units resolved.
    pub fn execute(&self, plan: &[RunRequest]) -> usize {
        let mut seen = HashSet::new();
        let unique: Vec<&RunRequest> = plan
            .iter()
            .filter(|r| seen.insert(canonical_key_parts(r.key, &r.input, r.config, r.rep)))
            .collect();
        let total = unique.len() as u32;
        let progress = AtomicU64::new(0);
        unique.par_iter().for_each(|req| {
            if let Some(b) = registry::by_key(req.key) {
                let _ = self.run(b.as_ref(), &req.input, req.config, req.rep);
            }
            let done = progress.fetch_add(1, Ordering::Relaxed) as u32 + 1;
            self.emit(Event::CampaignProgress {
                t: self.wall(),
                done,
                total,
            });
        });
        unique.len()
    }

    /// One unit of the matrix, memoized: serve from the in-process memo,
    /// else from disk, else simulate (exactly once per process — a second
    /// concurrent request for the same unit waits for the first).
    pub fn run(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        config: GpuConfigKind,
        rep: u64,
    ) -> Result<Measurement, PowerError> {
        let ckey = canonical_key_parts(bench.spec().key, input, config, rep);
        {
            let mut g = self.state.lock().unwrap();
            loop {
                if let Some(v) = g.memo.get(&ckey) {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    self.emit(Event::CacheLookup {
                        t: self.wall(),
                        key: ckey.clone(),
                        hit: true,
                        disk: false,
                    });
                    return v.clone();
                }
                if g.inflight.contains(&ckey) {
                    g = self.done.wait(g).unwrap();
                } else {
                    break;
                }
            }
            // Disk probe under the lock: records are tiny, and probing
            // here keeps hit accounting race-free.
            if let Some(rec) = self.load_record(&ckey) {
                g.memo.insert(ckey.clone(), rec.clone());
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.emit(Event::CacheLookup {
                    t: self.wall(),
                    key: ckey.clone(),
                    hit: true,
                    disk: true,
                });
                return rec;
            }
            g.inflight.insert(ckey.clone());
        }
        // Simulate outside the lock so the pool keeps stealing work.
        let res = measure(bench, input, config, rep);
        self.simulated.fetch_add(1, Ordering::Relaxed);
        self.store_record(&ckey, &res);
        let mut g = self.state.lock().unwrap();
        g.memo.insert(ckey.clone(), res.clone());
        g.inflight.remove(&ckey);
        drop(g);
        self.done.notify_all();
        self.emit(Event::CacheLookup {
            t: self.wall(),
            key: ckey,
            hit: false,
            disk: false,
        });
        res
    }

    /// The paper's median-of-three, derived from the three cached reps.
    /// Bit-identical to [`crate::experiment::measure_median3`]: both feed
    /// the same per-rep measurements through [`combine_median3`].
    pub fn median3(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        config: GpuConfigKind,
    ) -> Result<MedianMeasurement, PowerError> {
        let runs = [
            self.run(bench, input, config, 0)?,
            self.run(bench, input, config, 1)?,
            self.run(bench, input, config, 2)?,
        ];
        Ok(combine_median3(&runs))
    }

    /// A reading at the requested repetition count: the median-of-three
    /// methodology, or the single rep-0 run in `--quick` mode.
    pub fn reading(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        config: GpuConfigKind,
        reps: u64,
    ) -> Result<Reading, PowerError> {
        if reps >= 3 {
            self.median3(bench, input, config).map(|m| m.reading)
        } else {
            self.run(bench, input, config, 0).map(|m| m.reading)
        }
    }

    /// Like [`Campaign::reading`] but with the ancillary fields (items,
    /// counters, variability) the tables need.
    pub fn measurement(
        &self,
        bench: &dyn Benchmark,
        input: &InputSpec,
        config: GpuConfigKind,
        reps: u64,
    ) -> Result<MedianMeasurement, PowerError> {
        if reps >= 3 {
            self.median3(bench, input, config)
        } else {
            self.run(bench, input, config, 0)
                .map(|m| MedianMeasurement {
                    reading: m.reading,
                    items: m.items,
                    counters: m.counters,
                    time_variability_pct: 0.0,
                    energy_variability_pct: 0.0,
                })
        }
    }

    // -- persistence --------------------------------------------------------

    fn record_path(&self, ckey: &str) -> Option<PathBuf> {
        self.cache_dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.camp", fnv1a64(ckey.as_bytes()))))
    }

    /// Load one record, verifying fingerprint and full key. Any failure is
    /// a miss: stale and corrupt entries bump their counters and will be
    /// overwritten by the re-run's store.
    fn load_record(&self, ckey: &str) -> Option<Result<Measurement, PowerError>> {
        let path = self.record_path(ckey)?;
        let body = std::fs::read_to_string(&path).ok()?;
        match parse_record(&body) {
            Some((fp, key, res)) => {
                if key != ckey {
                    // Hash collision or hand-edited file: treat as absent.
                    None
                } else if fp != self.fingerprint {
                    self.disk_stale.fetch_add(1, Ordering::Relaxed);
                    None
                } else {
                    Some(res)
                }
            }
            None => {
                self.disk_corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist one record. Best-effort: an unwritable cache directory
    /// degrades to memo-only operation. The write goes through a unique
    /// temporary file + rename so concurrent processes never observe a
    /// torn record.
    fn store_record(&self, ckey: &str, res: &Result<Measurement, PowerError>) {
        let Some(path) = self.record_path(ckey) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let body = format_record(self.fingerprint, ckey, res);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, body).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

// ---------------------------------------------------------------------------
// Record format (hand-rolled: the workspace builds offline, serde is a shim)
// ---------------------------------------------------------------------------

fn fbits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_fbits(tok: &str) -> Option<f64> {
    u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
}

/// Render one record. Floats are stored as their exact bit patterns so a
/// round-trip through the cache is bit-identical to the live measurement.
fn format_record(fingerprint: u64, ckey: &str, res: &Result<Measurement, PowerError>) -> String {
    let mut s = String::new();
    s.push_str(RECORD_MAGIC);
    s.push('\n');
    s.push_str(&format!("fingerprint {fingerprint:016x}\n"));
    s.push_str(&format!("key {ckey}\n"));
    match res {
        Ok(m) => {
            let r = &m.reading;
            s.push_str("status ok\n");
            s.push_str(&format!(
                "reading {} {} {} {} {} {}\n",
                fbits(r.active_runtime_s),
                fbits(r.energy_j),
                fbits(r.avg_power_w),
                fbits(r.threshold_w),
                fbits(r.idle_w),
                r.n_active_samples
            ));
            s.push_str(&format!("checksum {}\n", fbits(m.checksum)));
            match &m.items {
                Some(it) => s.push_str(&format!("items {} {}\n", it.vertices, it.edges)),
                None => s.push_str("items none\n"),
            }
            let c = &m.counters;
            s.push_str(&format!(
                "counters {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                c.blocks,
                c.threads,
                c.warps,
                fbits(c.issue_cycles),
                fbits(c.dram_bytes),
                fbits(c.useful_bytes),
                fbits(c.transactions),
                fbits(c.ideal_transactions),
                fbits(c.atomics),
                fbits(c.lane_ops[0]),
                fbits(c.lane_ops[1]),
                fbits(c.lane_ops[2]),
                fbits(c.lane_ops[3]),
                fbits(c.lane_ops[4]),
                fbits(c.lane_ops[5]),
                fbits(c.lane_ops[6]),
                fbits(c.shared_accesses),
                fbits(c.bank_conflict_cycles),
                fbits(c.barriers),
                fbits(c.slots),
                fbits(c.active_lanes),
                0 // reserved
            ));
        }
        Err(PowerError::InsufficientSamples(n)) => {
            s.push_str("status err\n");
            s.push_str(&format!("error insufficient {n}\n"));
        }
        Err(PowerError::NoSamples) => {
            s.push_str("status err\n");
            s.push_str("error nosamples\n");
        }
    }
    s.push_str(RECORD_END);
    s.push('\n');
    s
}

/// Parse one record back. `None` on any malformation — including a missing
/// terminator line, which is how a truncated write is detected.
fn parse_record(body: &str) -> Option<(u64, String, Result<Measurement, PowerError>)> {
    let mut lines = body.lines();
    if lines.next()? != RECORD_MAGIC {
        return None;
    }
    let fp_line = lines.next()?;
    let fp = u64::from_str_radix(fp_line.strip_prefix("fingerprint ")?, 16).ok()?;
    let key = lines.next()?.strip_prefix("key ")?.to_string();
    let status = lines.next()?;
    let res: Result<Measurement, PowerError> = match status {
        "status ok" => {
            let rtoks: Vec<&str> = lines
                .next()?
                .strip_prefix("reading ")?
                .split_whitespace()
                .collect();
            if rtoks.len() != 6 {
                return None;
            }
            let reading = Reading {
                active_runtime_s: parse_fbits(rtoks[0])?,
                energy_j: parse_fbits(rtoks[1])?,
                avg_power_w: parse_fbits(rtoks[2])?,
                threshold_w: parse_fbits(rtoks[3])?,
                idle_w: parse_fbits(rtoks[4])?,
                n_active_samples: rtoks[5].parse().ok()?,
            };
            let checksum = parse_fbits(lines.next()?.strip_prefix("checksum ")?)?;
            let items_line = lines.next()?.strip_prefix("items ")?;
            let items = if items_line == "none" {
                None
            } else {
                let mut it = items_line.split_whitespace();
                Some(ItemCounts {
                    vertices: it.next()?.parse().ok()?,
                    edges: it.next()?.parse().ok()?,
                })
            };
            let ctoks: Vec<&str> = lines
                .next()?
                .strip_prefix("counters ")?
                .split_whitespace()
                .collect();
            if ctoks.len() != 22 {
                return None;
            }
            let mut counters = KernelCounters {
                blocks: ctoks[0].parse().ok()?,
                threads: ctoks[1].parse().ok()?,
                warps: ctoks[2].parse().ok()?,
                issue_cycles: parse_fbits(ctoks[3])?,
                dram_bytes: parse_fbits(ctoks[4])?,
                useful_bytes: parse_fbits(ctoks[5])?,
                transactions: parse_fbits(ctoks[6])?,
                ideal_transactions: parse_fbits(ctoks[7])?,
                atomics: parse_fbits(ctoks[8])?,
                ..Default::default()
            };
            for i in 0..7 {
                counters.lane_ops[i] = parse_fbits(ctoks[9 + i])?;
            }
            counters.shared_accesses = parse_fbits(ctoks[16])?;
            counters.bank_conflict_cycles = parse_fbits(ctoks[17])?;
            counters.barriers = parse_fbits(ctoks[18])?;
            counters.slots = parse_fbits(ctoks[19])?;
            counters.active_lanes = parse_fbits(ctoks[20])?;
            Ok(Measurement {
                reading,
                checksum,
                items,
                counters,
            })
        }
        "status err" => {
            let err_line = lines.next()?.strip_prefix("error ")?;
            if err_line == "nosamples" {
                Err(PowerError::NoSamples)
            } else {
                let n = err_line.strip_prefix("insufficient ")?.parse().ok()?;
                Err(PowerError::InsufficientSamples(n))
            }
        }
        _ => return None,
    };
    if lines.next()? != RECORD_END {
        return None;
    }
    Some((fp, key, res))
}

/// Remove every record in `dir` (used by `repro --no-cache` semantics is
/// *not* this — this is an explicit purge helper for tooling and tests).
pub fn purge_cache(dir: &Path) -> std::io::Result<usize> {
    let mut removed = 0;
    if dir.is_dir() {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().map(|e| e == "camp").unwrap_or(false) {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::measure_median3;
    use std::sync::atomic::AtomicU32;

    static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch cache directory per test (no tempfile dependency).
    fn scratch_dir(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "gpgpu-campaign-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn disk_campaign(dir: &Path) -> Campaign {
        Campaign::new(CampaignConfig {
            cache_dir: Some(dir.to_path_buf()),
            telemetry: None,
        })
    }

    fn readings_bit_identical(a: &Reading, b: &Reading) -> bool {
        a.active_runtime_s.to_bits() == b.active_runtime_s.to_bits()
            && a.energy_j.to_bits() == b.energy_j.to_bits()
            && a.avg_power_w.to_bits() == b.avg_power_w.to_bits()
            && a.threshold_w.to_bits() == b.threshold_w.to_bits()
            && a.idle_w.to_bits() == b.idle_w.to_bits()
            && a.n_active_samples == b.n_active_samples
    }

    #[test]
    fn campaign_median3_matches_direct_measurement_bitwise() {
        let dir = scratch_dir("roundtrip");
        let b = registry::by_key("sgemm").unwrap();
        let input = &b.inputs()[0];
        let direct = measure_median3(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();

        // Cold campaign: simulates, persists.
        let c1 = disk_campaign(&dir);
        let m1 = c1
            .median3(b.as_ref(), input, GpuConfigKind::Default)
            .unwrap();
        assert!(readings_bit_identical(&m1.reading, &direct.reading));
        assert_eq!(m1.counters, direct.counters);
        assert_eq!(c1.stats().simulated, 3);

        // Warm campaign, same directory: serves the records from disk
        // without touching the simulator, bit-identical.
        let before = kepler_sim::devices_created();
        let c2 = disk_campaign(&dir);
        let m2 = c2
            .median3(b.as_ref(), input, GpuConfigKind::Default)
            .unwrap();
        assert_eq!(
            kepler_sim::devices_created(),
            before,
            "cache hit must skip simulation"
        );
        let s = c2.stats();
        assert_eq!((s.simulated, s.disk_hits), (0, 3), "{s}");
        assert!(readings_bit_identical(&m2.reading, &direct.reading));
        assert_eq!(m2.counters, direct.counters);
        assert_eq!(
            m2.time_variability_pct.to_bits(),
            direct.time_variability_pct.to_bits()
        );
        assert_eq!(
            m2.energy_variability_pct.to_bits(),
            direct.energy_variability_pct.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_hit_skips_simulation_and_is_counted() {
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let c = Campaign::in_memory();
        let m1 = c.run(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert_eq!(c.stats().simulated, 1);
        let before = kepler_sim::devices_created();
        let m2 = c.run(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert_eq!(kepler_sim::devices_created(), before);
        assert_eq!(c.stats().memo_hits, 1);
        assert!(readings_bit_identical(&m1.reading, &m2.reading));
    }

    #[test]
    fn stale_fingerprint_forces_rerun() {
        let dir = scratch_dir("stale");
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        // Plant a record under a deliberately different fingerprint.
        let old = disk_campaign(&dir).with_fingerprint(0xDEAD_BEEF);
        old.run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        assert_eq!(old.stats().simulated, 1);
        // A correctly-fingerprinted campaign must re-run, not trust it.
        let c = disk_campaign(&dir);
        c.run(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        let s = c.stats();
        assert_eq!((s.simulated, s.disk_hits, s.disk_stale), (1, 0, 1), "{s}");
        // ... and its store repaired the record for the next campaign.
        let c2 = disk_campaign(&dir);
        c2.run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        assert_eq!(c2.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_record_forces_clean_rerun() {
        let dir = scratch_dir("truncated");
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let c1 = disk_campaign(&dir);
        let m1 = c1
            .run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        // Truncate the single record on disk (simulates a torn write that
        // bypassed the tmp+rename path, e.g. a full disk).
        let files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(files.len(), 1);
        let body = std::fs::read_to_string(&files[0]).unwrap();
        std::fs::write(&files[0], &body[..body.len() / 2]).unwrap();
        let c2 = disk_campaign(&dir);
        let m2 = c2
            .run(b.as_ref(), input, GpuConfigKind::Default, 0)
            .unwrap();
        let s = c2.stats();
        assert_eq!((s.simulated, s.disk_hits, s.disk_corrupt), (1, 0, 1), "{s}");
        assert!(readings_bit_identical(&m1.reading, &m2.reading));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn measurement_errors_are_cached_too() {
        // lbfs-wlw on its largest input is the paper's "too fast to
        // measure" case; the campaign must not re-simulate it on every
        // request (the 324-MHz sweep would otherwise never warm up).
        let dir = scratch_dir("errors");
        let b = registry::by_key("lbfs-wlw").unwrap();
        let input = b.inputs().last().unwrap().clone();
        let c1 = disk_campaign(&dir);
        let e1 = c1
            .run(b.as_ref(), &input, GpuConfigKind::Default, 0)
            .unwrap_err();
        assert_eq!(c1.stats().simulated, 1);
        let c2 = disk_campaign(&dir);
        let before = kepler_sim::devices_created();
        let e2 = c2
            .run(b.as_ref(), &input, GpuConfigKind::Default, 0)
            .unwrap_err();
        assert_eq!(kepler_sim::devices_created(), before);
        assert_eq!(c2.stats().disk_hits, 1);
        assert_eq!(e1, e2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execute_deduplicates_the_plan() {
        let b = registry::by_key("sten").unwrap();
        let input = b.inputs()[0].clone();
        let c = Campaign::in_memory();
        let req = RunRequest {
            key: "sten",
            input,
            config: GpuConfigKind::Default,
            rep: 0,
        };
        // The same unit requested three times plans down to one run.
        let unique = c.execute(&[req.clone(), req.clone(), req]);
        assert_eq!(unique, 1);
        assert_eq!(c.stats().simulated, 1);
    }

    #[test]
    fn record_format_rejects_malformed_bodies() {
        let m = Measurement {
            reading: Reading {
                active_runtime_s: 1.5,
                energy_j: 150.0,
                avg_power_w: 100.0,
                threshold_w: 55.0,
                idle_w: 25.0,
                n_active_samples: 15,
            },
            checksum: 42.0,
            items: Some(ItemCounts {
                vertices: 7,
                edges: 11,
            }),
            counters: Default::default(),
        };
        let body = format_record(0xABCD, "v1|k|i|cfg=default|rep=0|seed=0", &Ok(m.clone()));
        let (fp, key, res) = parse_record(&body).unwrap();
        assert_eq!(fp, 0xABCD);
        assert_eq!(key, "v1|k|i|cfg=default|rep=0|seed=0");
        let back = res.unwrap();
        assert!(readings_bit_identical(&back.reading, &m.reading));
        assert_eq!(back.items, m.items);
        // Truncation at any line boundary is rejected.
        let lines: Vec<&str> = body.lines().collect();
        for cut in 1..lines.len() {
            let partial = lines[..cut].join("\n");
            assert!(parse_record(&partial).is_none(), "cut at {cut} accepted");
        }
        // Error records round-trip as well.
        let err = format_record(1, "k", &Err(PowerError::InsufficientSamples(4)));
        assert_eq!(
            parse_record(&err).unwrap().2.unwrap_err(),
            PowerError::InsufficientSamples(4)
        );
        assert!(parse_record("garbage").is_none());
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(sim_fingerprint(), sim_fingerprint());
        assert_ne!(sim_fingerprint(), 0);
    }
}
