//! Running one program under one configuration and measuring it exactly as
//! the paper does: emulated sensor samples -> K20Power analysis -> median
//! of three repetitions.

use crate::configs::GpuConfigKind;
use crate::tracedb::StoredTrace;
use gpower::{
    sampled_energy, study_policies, variability_pct, K20Power, PowerError, PowerSensor, PowerTrace,
    Reading,
};
use kepler_sim::{
    Device, DeviceConfig, KernelCounters, LaunchStats, TraceRecorder, TraceReplayDevice,
};
use sim_telemetry::{Event, EventTrace};
use std::sync::Arc;
use workloads::bench::{Benchmark, InputSpec, ItemCounts};

/// One successful measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub reading: Reading,
    pub checksum: f64,
    pub items: Option<ItemCounts>,
    pub counters: KernelCounters,
    /// Exact integral of the ground-truth power trace over the whole run
    /// (lead-in to lead-out), the reference the instruction-class energy
    /// attribution reconciles against. Unlike `reading.energy_j` this is
    /// not windowed by the K20Power threshold analysis.
    pub board_energy_j: f64,
    /// End time of the ground-truth trace, simulated seconds.
    pub trace_end_s: f64,
    /// Busy time of the kernel windows (device kernel time).
    pub kernel_time_s: f64,
    /// Energy estimates of the emulated polling sensor under each
    /// [`gpower::study_policies`] policy, in policy order. Compared against
    /// `board_energy_j` by the sampling-error study.
    pub sampled_energy_j: Vec<f64>,
}

impl Measurement {
    /// Instruction-class attribution of this run's board energy under
    /// `cfg` (the configuration it was measured with).
    pub fn energy_breakdown(&self, cfg: &DeviceConfig) -> gpower::EnergyBreakdown {
        kepler_sim::attribute_energy(
            cfg,
            &self.counters,
            self.trace_end_s,
            self.kernel_time_s,
            self.board_energy_j,
        )
    }
}

/// Median of three repetitions plus run-to-run variability (Table 2).
#[derive(Debug, Clone)]
pub struct MedianMeasurement {
    pub reading: Reading,
    pub items: Option<ItemCounts>,
    pub counters: KernelCounters,
    /// (max-min)/median of active runtime over the repetitions, percent.
    pub time_variability_pct: f64,
    /// Same for energy.
    pub energy_variability_pct: f64,
    /// Ancillary energy-observability fields of the median-time repetition
    /// (like `counters`, these come from one representative run).
    pub board_energy_j: f64,
    pub trace_end_s: f64,
    pub kernel_time_s: f64,
    pub sampled_energy_j: Vec<f64>,
}

/// Jitter seed of one repetition: FNV-1a over the program key and input
/// name, folded with the repetition index.
///
/// The two strings are separated by `0xFF` (a byte that cannot occur in
/// UTF-8), so distinct pairs like `("ab", "c")` and `("a", "bc")` hash to
/// distinct seeds — plain concatenation used to alias them, which gave
/// different program/input combinations identical run-to-run jitter.
pub(crate) fn run_seed(bench_key: &str, input_name: &str, rep: u64) -> u64 {
    const FNV_PRIME: u64 = 0x100_0000_01b3; // 2^40 + 2^8 + 0xb3
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bench_key
        .bytes()
        .chain(std::iter::once(0xFF))
        .chain(input_name.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^ rep.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `bench` on `input` under `kind` once (repetition `rep`) and measure
/// it through the sensor + K20Power pipeline.
pub fn measure(
    bench: &dyn Benchmark,
    input: &InputSpec,
    kind: GpuConfigKind,
    rep: u64,
) -> Result<Measurement, PowerError> {
    measure_with_device_config(bench, input, kind.device_config(), rep)
}

/// [`measure`] generalized to an arbitrary [`DeviceConfig`] — the clock
/// sweep path, where the configuration is a grid point rather than one of
/// the paper's four named settings. Seeding is identical to [`measure`]
/// (the seed depends only on program, input and repetition), so a sweep
/// point that coincides with a named configuration produces a bit-identical
/// measurement.
pub fn measure_with_device_config(
    bench: &dyn Benchmark,
    input: &InputSpec,
    mut cfg: DeviceConfig,
    rep: u64,
) -> Result<Measurement, PowerError> {
    let seed = run_seed(bench.spec().key, input.name, rep);
    cfg.jitter_seed = seed;
    let mut dev = Device::new(cfg);
    let out = bench.run(&mut dev, input);
    let counters = dev.total_counters();
    let kernel_time_s = dev.kernel_time();
    let (trace, _stats) = dev.finish();
    let sensor = PowerSensor::default();
    let samples = sensor.sample(&trace, seed ^ 0x5A5A);
    let reading = K20Power::default().analyze(&samples)?;
    let sampled_energy_j = study_policies()
        .iter()
        .map(|p| sampled_energy(&trace, p, seed).energy_j)
        .collect();
    Ok(Measurement {
        reading,
        checksum: out.checksum,
        items: out.items,
        counters,
        board_energy_j: trace.total_energy(),
        trace_end_s: trace.end_time(),
        kernel_time_s,
        sampled_energy_j,
    })
}

/// [`measure_with_device_config`] with a launch-trace recorder attached.
///
/// The recorder observes the launches the device executes — it never
/// perturbs them — so the returned measurement is bit-identical to the
/// plain one. The second element is the recorded trace, or `None` when the
/// run is ineligible (some launch bypassed pre-execution, so its functional
/// outcome may be configuration-dependent and must not be replayed).
///
/// The measurement result is built *before* the trace is extracted, so a
/// run whose reading fails K20Power analysis (too few samples) still yields
/// a trace: replaying it under the same configuration reproduces the same
/// error, which the campaign caches like any other outcome.
pub fn measure_with_device_config_recording(
    bench: &dyn Benchmark,
    input: &InputSpec,
    mut cfg: DeviceConfig,
    rep: u64,
) -> (Result<Measurement, PowerError>, Option<StoredTrace>) {
    let seed = run_seed(bench.spec().key, input.name, rep);
    cfg.jitter_seed = seed;
    let mut dev = Device::new(cfg);
    let rec = Arc::new(TraceRecorder::default());
    dev.set_trace_recorder(rec.clone());
    let out = bench.run(&mut dev, input);
    let counters = dev.total_counters();
    let kernel_time_s = dev.kernel_time();
    let (trace, _stats) = dev.finish();
    let sensor = PowerSensor::default();
    let samples = sensor.sample(&trace, seed ^ 0x5A5A);
    let reading = K20Power::default().analyze(&samples);
    let sampled_energy_j: Vec<f64> = study_policies()
        .iter()
        .map(|p| sampled_energy(&trace, p, seed).energy_j)
        .collect();
    let res = reading.map(|reading| Measurement {
        reading,
        checksum: out.checksum,
        items: out.items,
        counters,
        board_energy_j: trace.total_energy(),
        trace_end_s: trace.end_time(),
        kernel_time_s,
        sampled_energy_j,
    });
    let stored = rec.finish().map(|run| StoredTrace {
        run,
        checksum: out.checksum,
        items: out.items,
    });
    (res, stored)
}

/// Re-measure a recorded run under an arbitrary configuration **without
/// functional execution**: the stored launch stream drives the same fluid
/// scheduler, power model, sensor and K20Power analysis the live pipeline
/// uses, with the same per-(program, input, rep) seed derivation — so for
/// any `(cfg, rep)` the result is bit-identical to what
/// [`measure_with_device_config`] would have produced. The functional
/// outputs replay cannot recompute (checksum, item counts) come from the
/// stored trace.
pub fn measure_from_trace(
    bench_key: &str,
    input: &InputSpec,
    mut cfg: DeviceConfig,
    rep: u64,
    st: &StoredTrace,
) -> Result<Measurement, PowerError> {
    let seed = run_seed(bench_key, input.name, rep);
    cfg.jitter_seed = seed;
    let mut dev = TraceReplayDevice::new(cfg);
    dev.replay(&st.run);
    let counters = dev.total_counters();
    let kernel_time_s = dev.kernel_time();
    let (trace, _stats) = dev.finish();
    let sensor = PowerSensor::default();
    let samples = sensor.sample(&trace, seed ^ 0x5A5A);
    let reading = K20Power::default().analyze(&samples)?;
    let sampled_energy_j = study_policies()
        .iter()
        .map(|p| sampled_energy(&trace, p, seed).energy_j)
        .collect();
    Ok(Measurement {
        reading,
        checksum: st.checksum,
        items: st.items,
        counters,
        board_energy_j: trace.total_energy(),
        trace_end_s: trace.end_time(),
        kernel_time_s,
        sampled_energy_j,
    })
}

/// One run measured with full telemetry: the usual sensor/K20Power reading
/// plus the event stream recorded behind it and the ground-truth trace.
///
/// Unlike [`measure`], an unmeasurable run (too few power samples) is not an
/// error here — the profiler still wants the trace and per-kernel stats of a
/// run the K20Power tool would reject, so the reading is kept as a `Result`.
#[derive(Debug)]
pub struct TracedMeasurement {
    pub reading: Result<Reading, PowerError>,
    pub checksum: f64,
    pub items: Option<ItemCounts>,
    /// Counters merged over all launches.
    pub counters: KernelCounters,
    /// Per-launch statistics, in launch order.
    pub stats: Vec<LaunchStats>,
    /// Ground-truth power trace the sensor sampled.
    pub trace: PowerTrace,
    /// Busy time of the kernel windows (device kernel time).
    pub kernel_time_s: f64,
    /// Instruction-class attribution of the trace-integral energy under
    /// the run's configuration (nominal coefficients; the residual lands
    /// in the `unmodeled` class). Also emitted as `ClassEnergy` telemetry
    /// events at the end of the stream.
    pub breakdown: gpower::EnergyBreakdown,
    /// Every telemetry event recorded during the run, in record order:
    /// simulator events (launch/retire, block dispatch, SM/board/DRAM
    /// intervals) followed by sensor samples, threshold crossings, and the
    /// per-class energy attribution.
    pub events: Vec<Event>,
    /// Events evicted from the ring buffer to honour `event_capacity`.
    pub dropped_events: u64,
}

/// Run `bench` on `input` under `kind` once with a telemetry recorder
/// attached end to end: the [`Device`] (scheduler intervals, launches), the
/// [`PowerSensor`] (samples, rate switches) and the [`K20Power`] analysis
/// (threshold crossings) all feed the same bounded [`EventTrace`].
///
/// Seeding is identical to [`measure`], so the reading matches the untraced
/// pipeline exactly — telemetry observes the run, it never perturbs it.
pub fn measure_traced(
    bench: &dyn Benchmark,
    input: &InputSpec,
    kind: GpuConfigKind,
    rep: u64,
    event_capacity: usize,
) -> TracedMeasurement {
    let seed = run_seed(bench.spec().key, input.name, rep);
    let mut cfg = kind.device_config();
    cfg.jitter_seed = seed;
    let mut dev = Device::new(cfg);
    let sink = Arc::new(EventTrace::with_capacity(event_capacity));
    dev.set_telemetry(sink.clone());
    let out = bench.run(&mut dev, input);
    let counters = dev.total_counters();
    let kernel_time_s = dev.kernel_time();
    let (trace, stats) = dev.finish();
    let sensor = PowerSensor::default();
    let samples = sensor.sample_traced(&trace, seed ^ 0x5A5A, Some(&*sink));
    let reading = K20Power::default().analyze_traced(&samples, Some(&*sink));
    // Attribute the board integral across instruction classes and put the
    // result on the event stream (one ClassEnergy per class, at trace end).
    let breakdown = kepler_sim::attribute_energy(
        &kind.device_config(),
        &counters,
        trace.end_time(),
        kernel_time_s,
        trace.total_energy(),
    );
    use sim_telemetry::TelemetrySink;
    for (class, energy_j) in breakdown.rows() {
        sink.record(Event::ClassEnergy {
            t: trace.end_time(),
            class: class.name().to_string(),
            energy_j,
        });
    }
    let dropped_events = sink.dropped();
    TracedMeasurement {
        reading,
        checksum: out.checksum,
        items: out.items,
        counters,
        stats,
        trace,
        kernel_time_s,
        breakdown,
        events: sink.take(),
        dropped_events,
    }
}

/// The paper's methodology: three repetitions, report the median of each
/// metric. Fails if any repetition yields insufficient samples.
pub fn measure_median3(
    bench: &dyn Benchmark,
    input: &InputSpec,
    kind: GpuConfigKind,
    base_rep: u64,
) -> Result<MedianMeasurement, PowerError> {
    let runs: Vec<Measurement> = (0..3)
        .map(|r| measure(bench, input, kind, base_rep * 3 + r))
        .collect::<Result<_, _>>()?;
    Ok(combine_median3(&runs))
}

/// Combine three repetitions into the paper's reported median measurement.
///
/// Runtime and energy are the medians of their repetitions; average power
/// is **derived** as `median energy / median runtime` rather than medianed
/// independently — the K20Power definition (`Reading::avg_power_w` is
/// `energy_j / active_runtime_s`) must survive the combination, and three
/// independently-taken medians need not come from the same repetition.
pub fn combine_median3(runs: &[Measurement]) -> MedianMeasurement {
    assert_eq!(runs.len(), 3, "median-of-three needs exactly three runs");
    let times: Vec<f64> = runs.iter().map(|m| m.reading.active_runtime_s).collect();
    let energies: Vec<f64> = runs.iter().map(|m| m.reading.energy_j).collect();
    let med = gpower::median(&times);
    // Pick the run whose time is the median for the ancillary fields.
    let med_run = runs
        .iter()
        .min_by(|a, b| {
            (a.reading.active_runtime_s - med)
                .abs()
                .total_cmp(&(b.reading.active_runtime_s - med).abs())
        })
        .unwrap();
    let mut reading = med_run.reading;
    reading.active_runtime_s = med;
    reading.energy_j = gpower::median(&energies);
    reading.avg_power_w = if med > 0.0 {
        reading.energy_j / med
    } else {
        0.0
    };
    MedianMeasurement {
        reading,
        items: med_run.items,
        counters: med_run.counters,
        time_variability_pct: variability_pct(&times),
        energy_variability_pct: variability_pct(&energies),
        board_energy_j: med_run.board_energy_j,
        trace_end_s: med_run.trace_end_s,
        kernel_time_s: med_run.kernel_time_s,
        sampled_energy_j: med_run.sampled_energy_j.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::registry;

    #[test]
    fn measure_nb_produces_sane_reading() {
        let b = registry::by_key("nb").unwrap();
        let input = &b.inputs()[0];
        let m = measure(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert!(m.reading.active_runtime_s > 0.5);
        assert!(m.reading.avg_power_w > 30.0 && m.reading.avg_power_w < 250.0);
        assert!(m.reading.energy_j > 0.0);
    }

    #[test]
    fn repetitions_differ_but_only_slightly() {
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let a = measure(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        let c = measure(b.as_ref(), input, GpuConfigKind::Default, 1).unwrap();
        // The tool's active runtime is quantized to the 10 Hz sample grid,
        // so jitter may or may not move it — but energy integrates the
        // noisy samples and always differs.
        assert_ne!(a.reading.energy_j, c.reading.energy_j);
        let rel = (a.reading.active_runtime_s - c.reading.active_runtime_s).abs()
            / a.reading.active_runtime_s;
        assert!(rel < 0.15, "rel {rel}");
        // Regular code: identical answers regardless of jitter.
        assert_eq!(a.checksum, c.checksum);
    }

    #[test]
    fn median3_variability_is_reported() {
        let b = registry::by_key("sgemm").unwrap();
        let input = &b.inputs()[0];
        let m = measure_median3(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert!(m.time_variability_pct >= 0.0 && m.time_variability_pct < 20.0);
        assert!(m.reading.active_runtime_s > 0.0);
    }

    #[test]
    fn traced_measurement_matches_untraced_and_reconciles() {
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let plain = measure(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        let traced = measure_traced(b.as_ref(), input, GpuConfigKind::Default, 0, 1 << 20);
        // Same seeds -> identical reading; telemetry never perturbs the run.
        let r = traced.reading.as_ref().unwrap();
        assert_eq!(r.energy_j, plain.reading.energy_j);
        assert_eq!(r.active_runtime_s, plain.reading.active_runtime_s);
        assert_eq!(traced.checksum, plain.checksum);
        // The event stream reconstructs the ground-truth trace energy.
        assert_eq!(traced.dropped_events, 0);
        let tl = sim_telemetry::build_timeline(&traced.events);
        let rel =
            (tl.total_energy_j() - traced.trace.total_energy()).abs() / traced.trace.total_energy();
        assert!(rel < 1e-6, "rel {rel}");
        assert!(!traced.stats.is_empty());
        // The sensor's samples and the tool's crossings made it in too.
        assert!(traced
            .events
            .iter()
            .any(|e| matches!(e, Event::SensorSample { .. })));
        assert!(traced
            .events
            .iter()
            .any(|e| matches!(e, Event::ThresholdCross { rising: true, .. })));
    }

    #[test]
    fn traced_measurement_survives_a_tiny_ring_buffer() {
        let b = registry::by_key("sten").unwrap();
        let input = &b.inputs()[0];
        let traced = measure_traced(b.as_ref(), input, GpuConfigKind::Default, 0, 64);
        assert!(traced.dropped_events > 0);
        assert_eq!(traced.events.len(), 64);
        // The run itself is unaffected by the recorder's capacity.
        let plain = measure(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert_eq!(traced.reading.unwrap().energy_j, plain.reading.energy_j);
    }

    #[test]
    fn seeds_are_distinct_across_programs() {
        assert_ne!(run_seed("a", "x", 0), run_seed("b", "x", 0));
        assert_ne!(run_seed("a", "x", 0), run_seed("a", "y", 0));
        assert_ne!(run_seed("a", "x", 0), run_seed("a", "x", 1));
    }

    /// Regression: plain concatenation of key and input bytes made
    /// `("ab", "c")` and `("a", "bc")` share a seed (and with them every
    /// boundary-shifted pair), so distinct program/input combinations got
    /// identical jitter. The `0xFF` separator keeps them apart.
    #[test]
    fn seeds_distinguish_key_input_boundary() {
        assert_ne!(run_seed("ab", "c", 0), run_seed("a", "bc", 0));
        assert_ne!(run_seed("ab", "", 0), run_seed("a", "b", 0));
        assert_ne!(run_seed("lbfs", "-wla x", 0), run_seed("lbfs-wla", " x", 0));
    }

    /// Regression: the median-of-three reading must stay internally
    /// consistent with the K20Power definition — `avg_power_w` is exactly
    /// `energy_j / active_runtime_s`, not an independently-taken median.
    #[test]
    fn median3_reading_is_internally_consistent() {
        let b = registry::by_key("sgemm").unwrap();
        let input = &b.inputs()[0];
        let m = measure_median3(b.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        assert_eq!(
            m.reading.avg_power_w.to_bits(),
            (m.reading.energy_j / m.reading.active_runtime_s).to_bits(),
            "avg_power_w must be derived from the median energy and time"
        );
    }

    /// The combiner's invariant holds even on hand-built runs where the
    /// three metric medians come from three *different* repetitions.
    #[test]
    fn combine_median3_derives_power_from_medians() {
        let mk = |t: f64, e: f64, p: f64| Measurement {
            reading: gpower::Reading {
                active_runtime_s: t,
                energy_j: e,
                avg_power_w: p,
                threshold_w: 50.0,
                idle_w: 25.0,
                n_active_samples: 100,
            },
            checksum: 0.0,
            items: None,
            counters: Default::default(),
            board_energy_j: 0.0,
            trace_end_s: 0.0,
            kernel_time_s: 0.0,
            sampled_energy_j: Vec::new(),
        };
        // Median time from run 0, median energy from run 1; a per-metric
        // median of powers would pick 110.0 (run 2) — internally
        // inconsistent with 1000/10 = 100 W.
        let runs = [
            mk(10.0, 900.0, 90.0),
            mk(9.0, 1000.0, 111.1),
            mk(11.0, 1210.0, 110.0),
        ];
        let m = combine_median3(&runs);
        assert_eq!(m.reading.active_runtime_s, 10.0);
        assert_eq!(m.reading.energy_j, 1000.0);
        assert_eq!(m.reading.avg_power_w, 100.0);
    }
}
