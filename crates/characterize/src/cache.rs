//! The `cache-sensitivity` artifact: what the sectored L1/L2 hierarchy
//! changes, per workload.
//!
//! The paper's tables and figures run under the flat-DRAM model; this
//! artifact runs every Table-1 program (primary input) twice more under
//! the cache model ([`GpuConfigKind::Cache`] / [`GpuConfigKind::Cache614`])
//! and reports, per program:
//!
//! * the measured **L1 and L2 hit rates** of the coalesced access stream;
//! * the **core-clock sensitivity** under both memory models — the L2 and
//!   its crossbar live in the core clock domain, so cache-resident codes
//!   *gain* core-clock sensitivity relative to the flat model, sharpening
//!   the paper's central finding that the core clock dominates
//!   energy/performance;
//! * the runtime ratio cached/flat at default clocks;
//! * the static cache class from `sim-analyze` (per-block declared
//!   footprint vs. L2 capacity), cross-checked against the measured L2 hit
//!   rate with an agreement count.

use crate::campaign::{Campaign, RunRequest};
use crate::configs::GpuConfigKind;
use crate::figures::ratio_figure_runs;
use kepler_sim::CacheConfig;
use rayon::prelude::*;
use serde::Serialize;
use sim_analyze::{cache_class_workload, capture_workload, CacheClass};
use std::fmt::Write as _;
use workloads::registry;

/// Cache-served share of sector traffic at or above which a workload
/// counts as measured cache-resident. The share counts L1 hits, L2 hits
/// *and* MSHR merges — a merge is serviced by an in-flight fetch, not a
/// fresh DRAM transaction, so raw hit rates alone under-count residency
/// for tight-reuse streams whose reuse distance sits inside the
/// outstanding-miss window.
pub const CACHE_SERVED_THRESHOLD: f64 = 0.5;

/// One program's flat-vs-cached comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CacheSensitivityRow {
    pub key: &'static str,
    pub input: String,
    /// L1 hit fraction of all coalesced sectors (cache model, default
    /// clocks).
    pub l1_hit_rate: f64,
    /// L2 hit fraction of the L1-miss stream.
    pub l2_hit_rate: f64,
    /// Core-clock sensitivity under the flat model (Default vs C614; see
    /// [`crate::analysis`] for the formula).
    pub flat_sensitivity: f64,
    /// Core-clock sensitivity under the cache model (Cache vs Cache614).
    pub cached_sensitivity: f64,
    /// Active-window runtime ratio cached/flat at default clocks.
    pub runtime_ratio: f64,
    /// Fraction of sector traffic served without a fresh DRAM fetch
    /// (L1 + L2 + MSHR merges over all classified sectors).
    pub cache_served: f64,
    /// Static per-block-footprint class: `cache-resident` /
    /// `cache-thrash` / `unknown`.
    pub static_class: &'static str,
    /// Measured class from [`CacheSensitivityRow::cache_served`] vs
    /// [`CACHE_SERVED_THRESHOLD`].
    pub measured_class: &'static str,
    /// Agreement; `None` when the static class is unknown.
    pub agree: Option<bool>,
}

/// The full artifact: rows plus programs excluded by measurement failure.
#[derive(Debug, Clone, Serialize)]
pub struct CacheSensitivity {
    pub rows: Vec<CacheSensitivityRow>,
    pub excluded: Vec<String>,
}

impl CacheSensitivity {
    /// `(agreeing rows, classifiable rows)`.
    pub fn agreement(&self) -> (usize, usize) {
        let total = self.rows.iter().filter(|r| r.agree.is_some()).count();
        let agree = self.rows.iter().filter(|r| r.agree == Some(true)).count();
        (agree, total)
    }
}

/// The measured runs the artifact needs: Figure 2's Default/C614 slice
/// (shared with the flat artifacts — a warm campaign re-simulates nothing
/// there) plus the same slice under the two cache configurations.
pub fn cache_sensitivity_runs(reps: u64) -> Vec<RunRequest> {
    let mut runs = ratio_figure_runs(GpuConfigKind::Default, GpuConfigKind::C614, reps);
    runs.extend(ratio_figure_runs(
        GpuConfigKind::Cache,
        GpuConfigKind::Cache614,
        reps,
    ));
    runs
}

/// Compute the artifact over every Table-1 program's primary input.
pub fn cache_sensitivity(c: &Campaign, reps: u64) -> CacheSensitivity {
    let keys: Vec<&'static str> = registry::all().iter().map(|b| b.spec().key).collect();
    let clock_gain = 705.0 / 614.0 - 1.0;
    let cc = CacheConfig::k20();
    let results: Vec<Result<CacheSensitivityRow, String>> = keys
        .par_iter()
        .map(|key| {
            let b = registry::by_key(key).unwrap();
            let input = &b.inputs()[0];
            let flat_base = c
                .reading(b.as_ref(), input, GpuConfigKind::Default, reps)
                .map_err(|e| format!("{key}: {e}"))?;
            let flat_alt = c
                .reading(b.as_ref(), input, GpuConfigKind::C614, reps)
                .map_err(|e| format!("{key}: {e}"))?;
            let cache_base = c
                .reading(b.as_ref(), input, GpuConfigKind::Cache, reps)
                .map_err(|e| format!("{key}: {e}"))?;
            let cache_alt = c
                .reading(b.as_ref(), input, GpuConfigKind::Cache614, reps)
                .map_err(|e| format!("{key}: {e}"))?;
            // Tier counters are deterministic per (program, input, model):
            // rep 0 serves.
            let m = c
                .run(b.as_ref(), input, GpuConfigKind::Cache, 0)
                .map_err(|e| format!("{key}: {e}"))?;
            let l1 = m.counters.l1_hit_rate();
            let l2 = m.counters.l2_hit_rate();
            let sectors = m.counters.l1_hits
                + m.counters.l2_hits
                + m.counters.mshr_merges
                + m.counters.dram_transactions;
            let cache_served = if sectors > 0.0 {
                (sectors - m.counters.dram_transactions) / sectors
            } else {
                0.0
            };
            let flat_sensitivity =
                (flat_alt.active_runtime_s / flat_base.active_runtime_s - 1.0) / clock_gain;
            let cached_sensitivity =
                (cache_alt.active_runtime_s / cache_base.active_runtime_s - 1.0) / clock_gain;
            let static_cls = cache_class_workload(&capture_workload(b.as_ref(), input), &cc);
            let measured = if cache_served >= CACHE_SERVED_THRESHOLD {
                CacheClass::CacheResident
            } else {
                CacheClass::CacheThrash
            };
            Ok(CacheSensitivityRow {
                key,
                input: input.name.to_string(),
                l1_hit_rate: l1,
                l2_hit_rate: l2,
                flat_sensitivity,
                cached_sensitivity,
                runtime_ratio: cache_base.active_runtime_s / flat_base.active_runtime_s,
                cache_served,
                static_class: static_cls.name(),
                measured_class: measured.name(),
                agree: match static_cls {
                    CacheClass::Unknown => None,
                    cls => Some(cls == measured),
                },
            })
        })
        .collect();
    let mut rows = Vec::new();
    let mut excluded = Vec::new();
    for r in results {
        match r {
            Ok(row) => rows.push(row),
            Err(e) => excluded.push(e),
        }
    }
    CacheSensitivity { rows, excluded }
}

/// Render the comparison table.
pub fn render_cache_sensitivity(a: &CacheSensitivity) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Cache sensitivity: sectored L1/L2 hierarchy vs the flat-DRAM model"
    )
    .unwrap();
    writeln!(
        s,
        "{:8} {:26} {:>6} {:>6} {:>7} {:>7} {:>8} {:>7} {:>15} {:>15} {:>6}",
        "Program",
        "Input",
        "L1%",
        "L2%",
        "cached%",
        "s.flat",
        "s.cache",
        "t.ratio",
        "static",
        "measured",
        "agree"
    )
    .unwrap();
    for r in &a.rows {
        writeln!(
            s,
            "{:8} {:26} {:>6.1} {:>6.1} {:>7.1} {:>7.2} {:>8.2} {:>7.3} {:>15} {:>15} {:>6}",
            r.key,
            r.input,
            r.l1_hit_rate * 100.0,
            r.l2_hit_rate * 100.0,
            r.cache_served * 100.0,
            r.flat_sensitivity,
            r.cached_sensitivity,
            r.runtime_ratio,
            r.static_class,
            r.measured_class,
            match r.agree {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            },
        )
        .unwrap();
    }
    let (agree, total) = a.agreement();
    writeln!(s, "agreement: {agree}/{total} classifiable programs").unwrap();
    for e in &a.excluded {
        writeln!(s, "excluded: {e}").unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_plan_covers_both_memory_models() {
        let runs = cache_sensitivity_runs(1);
        assert!(runs.iter().any(|r| r.config == GpuConfigKind::Default));
        assert!(runs.iter().any(|r| r.config == GpuConfigKind::Cache));
        assert!(runs.iter().any(|r| r.config == GpuConfigKind::Cache614));
        // Every program appears under every one of the four configs.
        let n = registry::all().len();
        assert_eq!(runs.len(), 4 * n);
    }

    #[test]
    fn render_is_stable_and_ends_with_agreement() {
        let a = CacheSensitivity {
            rows: vec![CacheSensitivityRow {
                key: "nb",
                input: "t".into(),
                l1_hit_rate: 0.25,
                l2_hit_rate: 0.75,
                flat_sensitivity: 0.9,
                cached_sensitivity: 1.0,
                runtime_ratio: 0.812,
                cache_served: 0.9,
                static_class: "cache-resident",
                measured_class: "cache-resident",
                agree: Some(true),
            }],
            excluded: vec!["xx: boom".into()],
        };
        let out = render_cache_sensitivity(&a);
        assert!(out.contains("nb"));
        assert!(out.contains("25.0"));
        assert!(out.contains("75.0"));
        assert!(out.contains("agreement: 1/1 classifiable programs"));
        assert!(out.trim_end().ends_with("excluded: xx: boom"));
    }
}
