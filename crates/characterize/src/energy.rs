//! The power-measurement observability lab: instruction-class energy
//! attribution and the emulated sampling-sensor error study.
//!
//! Two artifacts ride on the shared measurement campaign:
//!
//! * `energy-breakdown` — for each workload of [`ENERGY_SET`], the board
//!   trace-integral energy split across instruction classes
//!   ([`gpower::EnergyClass`]) by the nominal per-class model, with the
//!   thermal/jitter residual reported as the `unmodeled` class. The rows
//!   of one workload sum to its board energy *exactly* (the residual is
//!   defined by subtraction, never dropped).
//! * `energy-sampling-error` — for each [`gpower::study_policies`]
//!   sampling policy, the error of the polling sensor's energy estimate
//!   against the board trace integral, per workload and aggregated.
//!
//! Both draw the *same* run slice (one input per workload, default
//! configuration), so a warm campaign serves either artifact without a
//! single extra simulation.

use crate::campaign::{rep_indices, Campaign, RunRequest};
use crate::configs::GpuConfigKind;
use gpower::{study_policies, AveragingWindow};
use rayon::prelude::*;
use serde::Serialize;
use workloads::registry;

/// The energy-study workload set: one program per behavioural family
/// (dense FP32, stencil, n-body FP64, peak-FLOPS, molecular dynamics,
/// histogramming, and two irregular graph codes), all measurable at the
/// default configuration on their first input.
pub const ENERGY_SET: [&str; 8] = ["sgemm", "sten", "nb", "mf", "md", "tpacf", "lbfs", "sbfs"];

/// The runs both energy artifacts need: every [`ENERGY_SET`] workload on
/// its first input at the default configuration.
pub fn energy_runs(reps: u64) -> Vec<RunRequest> {
    let mut runs = Vec::new();
    for key in ENERGY_SET {
        let b = registry::by_key(key).unwrap();
        let input = b.inputs()[0].clone();
        for rep in rep_indices(reps) {
            runs.push(RunRequest {
                key: b.spec().key,
                input: input.clone(),
                config: GpuConfigKind::Default,
                rep,
            });
        }
    }
    runs
}

/// One workload's instruction-class energy attribution.
#[derive(Debug, Clone, Serialize)]
pub struct EnergyBreakdownRow {
    pub key: &'static str,
    pub input: String,
    /// Exact trace-integral energy of the run, joules.
    pub board_energy_j: f64,
    /// `(class name, joules)` in [`EnergyClass::ALL`] order; sums to
    /// `board_energy_j` exactly (the last entry is the residual).
    pub classes: Vec<(&'static str, f64)>,
    /// Signed residual share, percent of board energy.
    pub unmodeled_pct: f64,
}

/// The per-workload energy-breakdown table (default configuration).
pub fn energy_breakdown(c: &Campaign, reps: u64) -> Vec<EnergyBreakdownRow> {
    let cfg = GpuConfigKind::Default.device_config();
    ENERGY_SET
        .par_iter()
        .map(|key| {
            let b = registry::by_key(key).unwrap();
            let input = b.inputs()[0].clone();
            let m = c
                .measurement(b.as_ref(), &input, GpuConfigKind::Default, reps)
                .expect("energy-set workloads must be measurable at default");
            let bd = kepler_sim::attribute_energy(
                &cfg,
                &m.counters,
                m.trace_end_s,
                m.kernel_time_s,
                m.board_energy_j,
            );
            EnergyBreakdownRow {
                key,
                input: input.name.to_string(),
                board_energy_j: bd.board_energy_j,
                classes: bd.rows().map(|(c, j)| (c.name(), j)).collect(),
                unmodeled_pct: 100.0 * bd.unmodeled_frac(),
            }
        })
        .collect()
}

/// One sampling policy's energy-estimation error over the workload set.
#[derive(Debug, Clone, Serialize)]
pub struct SamplingErrorRow {
    /// Policy name from [`gpower::study_policies`].
    pub policy: &'static str,
    pub rate_hz: f64,
    pub phase_s: f64,
    pub jitter_s: f64,
    /// Trailing averaging window, seconds; 0 for instantaneous reads.
    pub window_s: f64,
    /// Signed relative error per workload, percent, in [`ENERGY_SET`]
    /// order.
    pub per_workload_pct: Vec<(&'static str, f64)>,
    /// Mean of |error| over the workloads, percent.
    pub mean_abs_pct: f64,
    /// Worst |error| over the workloads, percent.
    pub max_abs_pct: f64,
}

/// The sampled-energy error study: one row per sampling policy.
pub fn sampling_error(c: &Campaign, reps: u64) -> Vec<SamplingErrorRow> {
    // (key, board energy, per-policy sampled energies) per workload.
    let measured: Vec<(&'static str, f64, Vec<f64>)> = ENERGY_SET
        .par_iter()
        .map(|key| {
            let b = registry::by_key(key).unwrap();
            let input = b.inputs()[0].clone();
            let m = c
                .measurement(b.as_ref(), &input, GpuConfigKind::Default, reps)
                .expect("energy-set workloads must be measurable at default");
            (*key, m.board_energy_j, m.sampled_energy_j.clone())
        })
        .collect();
    study_policies()
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let per_workload_pct: Vec<(&'static str, f64)> = measured
                .iter()
                .map(|(key, truth, sampled)| (*key, 100.0 * (sampled[pi] - truth) / truth))
                .collect();
            let abs: Vec<f64> = per_workload_pct.iter().map(|(_, e)| e.abs()).collect();
            SamplingErrorRow {
                policy: p.name,
                rate_hz: p.rate_hz,
                phase_s: p.phase_s,
                jitter_s: p.jitter_s,
                window_s: match p.window {
                    AveragingWindow::Instantaneous => 0.0,
                    AveragingWindow::Trailing { window_s } => window_s,
                },
                mean_abs_pct: abs.iter().sum::<f64>() / abs.len() as f64,
                max_abs_pct: abs.iter().fold(0.0, |a: f64, &b| a.max(b)),
                per_workload_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpower::EnergyClass;

    #[test]
    fn energy_set_workloads_exist_with_inputs() {
        for key in ENERGY_SET {
            let b = registry::by_key(key).unwrap_or_else(|| panic!("unknown key {key}"));
            assert!(!b.inputs().is_empty(), "{key} has no inputs");
        }
        assert_eq!(energy_runs(1).len(), ENERGY_SET.len());
        assert_eq!(energy_runs(3).len(), ENERGY_SET.len() * 3);
    }

    /// The tentpole reconciliation invariant: for every workload of the
    /// set, the per-class energies (residual included) sum to the board
    /// trace integral to float precision, and the nominal model explains
    /// the run to within the thermal/jitter envelope.
    #[test]
    fn breakdown_reconciles_for_every_energy_set_workload() {
        let c = Campaign::in_memory();
        let rows = energy_breakdown(&c, 1);
        assert_eq!(rows.len(), ENERGY_SET.len());
        for r in &rows {
            let sum: f64 = r.classes.iter().map(|(_, j)| j).sum();
            let rel = (sum - r.board_energy_j).abs() / r.board_energy_j;
            assert!(rel < 1e-12, "{}: rel {rel}", r.key);
            assert_eq!(r.classes.len(), EnergyClass::ALL.len());
            assert_eq!(r.classes.last().unwrap().0, "unmodeled");
            assert!(
                r.unmodeled_pct.abs() < 5.0,
                "{}: unmodeled {}%",
                r.key,
                r.unmodeled_pct
            );
            assert!(r.board_energy_j > 0.0);
        }
    }

    /// Faster sampling shrinks the estimation error: the 100 Hz
    /// instantaneous policy beats 1 Hz on aggregate, and its worst-case
    /// error is tight.
    #[test]
    fn sampling_error_improves_with_rate() {
        let c = Campaign::in_memory();
        let rows = sampling_error(&c, 1);
        assert_eq!(rows.len(), study_policies().len());
        let by_name = |n: &str| rows.iter().find(|r| r.policy == n).unwrap();
        let slow = by_name("inst-1hz");
        let fast = by_name("inst-100hz");
        assert!(fast.mean_abs_pct < slow.mean_abs_pct);
        assert!(fast.max_abs_pct < 2.0, "100 Hz err {}", fast.max_abs_pct);
        for r in &rows {
            assert_eq!(r.per_workload_pct.len(), ENERGY_SET.len());
        }
    }
}
