//! Developer diagnostic: run one program's inputs at the default
//! configuration and print ground-truth timing plus trace statistics.
use characterize::GpuConfigKind;
use kepler_sim::Device;
use workloads::registry;

fn main() {
    let key = std::env::args().nth(1).unwrap_or_else(|| "nb".into());
    let b = registry::by_key(&key).unwrap();
    for input in b.inputs() {
        let mut cfg = GpuConfigKind::Default.device_config();
        cfg.jitter_seed = 1;
        let mut dev = Device::new(cfg);
        let t0 = std::time::Instant::now();
        b.run(&mut dev, &input);
        let wall = t0.elapsed();
        let kt = dev.kernel_time();
        let c = dev.total_counters();
        let (trace, _) = dev.finish();
        println!(
            "{key:10} {:24} wall={:>8.2?} sim={:>9.3}s trace_end={:>9.3}s segs={} launches_intensity={:.2}",
            input.name, wall, kt, trace.end_time(), trace.len(), c.compute_intensity()
        );
    }
}
