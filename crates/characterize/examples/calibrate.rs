//! Calibration sweep: per program-input, print the simulator's ground-truth
//! kernel time, the K20Power reading (if measurable), and a suggested
//! multiplier correction toward a target runtime.
use characterize::GpuConfigKind;
use gpower::{K20Power, PowerSensor};
use kepler_sim::Device;
use rayon::prelude::*;
use workloads::registry;

fn main() {
    let target: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12.0);
    let mut jobs = Vec::new();
    for b in registry::all().into_iter().chain(registry::variants()) {
        let key = b.spec().key;
        for input in b.inputs() {
            jobs.push((key, input));
        }
    }
    let rows: Vec<String> = jobs
        .par_iter()
        .map(|(key, input)| {
            let b = registry::by_key(key).unwrap();
            let mut cfg = GpuConfigKind::Default.device_config();
            cfg.jitter_seed = 1;
            let mut dev = Device::new(cfg);
            let t0 = std::time::Instant::now();
            b.run(&mut dev, input);
            let wall = t0.elapsed();
            let kt = dev.kernel_time();
            let c = dev.total_counters();
            let (trace, _) = dev.finish();
            let samples = PowerSensor::default().sample(&trace, 7);
            let reading = K20Power::default().analyze(&samples);
            let (p, e) = match &reading {
                Ok(r) => (r.avg_power_w, r.energy_j),
                Err(_) => (0.0, 0.0),
            };
            format!(
                "{key:12} {:26} kt={:9.2}s P={:6.1}W E={:9.0}J factor={:9.1} int={:7.2} div={:.2} wall={:>9.1?}",
                input.name,
                kt,
                p,
                e,
                target / kt.max(1e-9),
                c.compute_intensity(),
                c.divergence(),
                wall
            )
        })
        .collect();
    for r in rows {
        println!("{r}");
    }
}
