//! Serial-vs-parallel equivalence: every regular workload must produce a
//! bit-identical outcome whether its kernels execute at dispatch time
//! (the simulator's reference semantics), are pre-executed serially, are
//! pre-executed sharded across worker threads, or are replayed from the
//! process-wide pre-execution cache — and that must hold under more than
//! one clock configuration (the cache is shared across configurations by
//! design; see `docs/PERF.md`) AND under both memory models (the per-block
//! cache simulation keeps every block cost a pure function of its own
//! access stream; see `docs/MEMORY.md`).
//!
//! Benchmarks whose kernels use atomics never opt into `parallel_safe`,
//! so for them every strategy degenerates to exec-at-dispatch; including
//! them keeps the coverage statement simple ("every regular workload")
//! and guards against a future opt-in that would violate the contract.
//!
//! Everything runs inside ONE `#[test]` function: the pre-execution cache
//! is process-global, and the cold-path assertions need `reset_exec_cache`
//! calls that must not race a concurrently running test.

use kepler_sim::{CacheConfig, ClockConfig, Device, DeviceConfig, ExecStrategy, MemoryModel};
use workloads::bench::{Benchmark, InputSpec};
use workloads::registry;

/// Small inputs (debug builds execute functionally, so paper-scale inputs
/// are far too slow here). Sizes mirror each workload's own unit tests.
fn small_input(key: &str) -> Option<InputSpec> {
    let (n, m, seed) = match key {
        // CUDA SDK
        "eip" => (4096, 16, 0),
        "ep" => (4096, 16, 0),
        "nb" => (512, 0, 1),
        "sc" => (8192, 0, 0),
        // Parboil
        "cutcp" => (10, 400, 0),
        "histo" => (4096, 256, 0),
        "lbm" => (24, 2, 0),
        "mriq" => (512, 64, 0),
        "sad" => (32, 2, 0),
        "sgemm" => (64, 0, 0),
        "sten" => (20, 2, 0),
        "tpacf" => (300, 0, 0),
        // Rodinia
        "bp" => (2048, 0, 0),
        "ge" => (32, 0, 0),
        "nn" => (4096, 1, 0),
        "nw" => (64, 0, 0),
        "pf" => (512, 4, 0),
        // SHOC
        "fft" => (64, 2, 0),
        "mf" => (1024, 16, 0),
        "s2d" => (64, 2, 0),
        "st" => (4096, 0, 0),
        _ => return None,
    };
    let mut input = InputSpec::new("equiv", n, m, 0, 1.0);
    input.seed = seed;
    Some(input)
}

/// Run one benchmark under one strategy and fold the complete observable
/// outcome — result checksum, simulated kernel time, and every aggregate
/// counter — into a bitwise digest vector.
fn outcome(
    bench: &dyn Benchmark,
    input: &InputSpec,
    clocks: ClockConfig,
    mem_model: MemoryModel,
    strategy: ExecStrategy,
) -> Vec<u64> {
    let mut cfg = DeviceConfig::k20c(clocks, false);
    cfg.mem_model = mem_model;
    let mut dev = Device::new(cfg);
    dev.set_exec_strategy(strategy);
    let out = bench.run(&mut dev, input);
    let c = dev.total_counters();
    let mut digest = vec![
        out.checksum.to_bits(),
        dev.kernel_time().to_bits(),
        c.blocks,
        c.threads,
        c.warps,
        c.issue_cycles.to_bits(),
        c.dram_bytes.to_bits(),
        c.useful_bytes.to_bits(),
        c.transactions.to_bits(),
        c.ideal_transactions.to_bits(),
        c.atomics.to_bits(),
        c.shared_accesses.to_bits(),
        c.bank_conflict_cycles.to_bits(),
        c.barriers.to_bits(),
        c.slots.to_bits(),
        c.active_lanes.to_bits(),
    ];
    digest.extend(c.lane_ops.iter().map(|v| v.to_bits()));
    digest.extend([
        c.l1_hits.to_bits(),
        c.l2_hits.to_bits(),
        c.dram_transactions.to_bits(),
        c.mshr_merges.to_bits(),
    ]);
    digest
}

#[test]
fn every_regular_workload_is_strategy_invariant() {
    let benches = registry::all();
    let mut covered = 0usize;
    // Two clock configs under the flat model, plus the cache model at
    // default clocks: the equivalence contract must survive the per-block
    // cache simulation too.
    let passes = [
        (ClockConfig::k20_default(), MemoryModel::FlatDram),
        (ClockConfig::k20_614(), MemoryModel::FlatDram),
        (
            ClockConfig::k20_default(),
            MemoryModel::Cached(CacheConfig::k20()),
        ),
    ];
    for (clocks, mem_model) in passes {
        for bench in &benches {
            let spec = bench.spec();
            if !spec.regular {
                continue;
            }
            let input = small_input(spec.key)
                .unwrap_or_else(|| panic!("no small input for regular bench {:?}", spec.key));

            // Reference semantics, then each pre-execution variant cold
            // (cache cleared), then a warm run that must replay from cache.
            let reference = outcome(
                bench.as_ref(),
                &input,
                clocks,
                mem_model,
                ExecStrategy::AtDispatch,
            );
            for (label, strategy) in [
                ("pre-exec serial", ExecStrategy::PreExec { jobs: 1 }),
                ("pre-exec sharded", ExecStrategy::PreExec { jobs: 3 }),
            ] {
                kepler_sim::reset_exec_cache();
                let cold = outcome(bench.as_ref(), &input, clocks, mem_model, strategy);
                assert_eq!(
                    reference, cold,
                    "{} ({label}, cold) diverged from exec-at-dispatch",
                    spec.key
                );
                let warm = outcome(bench.as_ref(), &input, clocks, mem_model, strategy);
                assert_eq!(
                    reference, warm,
                    "{} ({label}, cache replay) diverged from exec-at-dispatch",
                    spec.key
                );
            }
            covered += 1;
        }
    }
    // 21 regular programs in Table 1, each checked under two clock
    // configs (flat) plus the cache model.
    assert_eq!(covered, 63, "regular-workload coverage changed");
}
