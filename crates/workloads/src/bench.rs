//! The benchmark-program interface driven by the characterization harness.

use kepler_sim::Device;
use serde::{Deserialize, Serialize};

/// The five benchmark suites of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Suite {
    CudaSdk,
    LonestarGpu,
    Parboil,
    Rodinia,
    Shoc,
}

impl Suite {
    pub const ALL: [Suite; 5] = [
        Suite::CudaSdk,
        Suite::LonestarGpu,
        Suite::Parboil,
        Suite::Rodinia,
        Suite::Shoc,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Suite::CudaSdk => "CUDA SDK",
            Suite::LonestarGpu => "LonestarGPU",
            Suite::Parboil => "Parboil",
            Suite::Rodinia => "Rodinia",
            Suite::Shoc => "SHOC",
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of a benchmark program (one Table-1 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSpec {
    /// Short lookup key, e.g. `"lbfs"`, `"nb"`, `"sssp-wlc"`.
    pub key: &'static str,
    /// Paper abbreviation, e.g. `"L-BFS"`.
    pub name: &'static str,
    pub suite: Suite,
    /// Number of global kernels the paper's Table 1 reports.
    pub kernels: u32,
    /// Regular (data-independent control/memory) vs irregular.
    pub regular: bool,
    pub description: &'static str,
}

impl BenchSpec {
    /// Stable identity of this program for persisted measurement caches:
    /// the lookup key plus the kernel count, so a port that restructures a
    /// program's kernels (changing its simulated behaviour) invalidates
    /// cached measurements even though the key is unchanged.
    pub fn cache_key(&self) -> String {
        format!("{}@k{}", self.key, self.kernels)
    }
}

/// One program input. Benchmarks interpret `n`/`m`/`aux` in their own terms
/// (documented per program); `mult` extrapolates the functionally executed
/// work to the paper-scale input so simulated runtimes produce enough power
/// samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputSpec {
    /// The paper's name for the input, e.g. `"entire USA"`, `"1m bodies"`.
    pub name: &'static str,
    /// Primary size parameter at simulation scale.
    pub n: usize,
    /// Secondary parameter (edges per node, timesteps, columns, ...).
    pub m: usize,
    /// Tertiary parameter.
    pub aux: usize,
    /// Work multiplier to paper scale.
    pub mult: f64,
    /// RNG seed for the input generator.
    pub seed: u64,
}

impl InputSpec {
    pub fn new(name: &'static str, n: usize, m: usize, aux: usize, mult: f64) -> Self {
        Self {
            name,
            n,
            m,
            aux,
            mult,
            seed: 0x5EED,
        }
    }

    /// Stable identity of this input for persisted measurement caches:
    /// every parameter that shapes the simulated run is folded in (`mult`
    /// by its exact bit pattern), so retuning an input's size or seed
    /// invalidates cached measurements that carry its (unchanged) name.
    pub fn cache_key(&self) -> String {
        format!(
            "{}#n{}m{}a{}x{:016x}s{}",
            self.name,
            self.n,
            self.m,
            self.aux,
            self.mult.to_bits(),
            self.seed
        )
    }
}

/// Items processed, for the paper's per-item metrics (Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemCounts {
    pub vertices: u64,
    pub edges: u64,
}

/// What a program run produced.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunOutput {
    /// Algorithm-specific checksum of the computed result (compared across
    /// configurations in integration tests: the answer must not depend on
    /// the clocks for regular codes).
    pub checksum: f64,
    /// Paper-scale items processed, when the per-item metric applies.
    pub items: Option<ItemCounts>,
}

/// A benchmark program: knows its Table-1 metadata, its paper inputs, and
/// how to run itself on a device.
pub trait Benchmark: Send + Sync {
    fn spec(&self) -> BenchSpec;

    /// The paper's inputs for this program, scaled for simulation.
    fn inputs(&self) -> Vec<InputSpec>;

    /// Run the whole program (allocate, launch kernels, read back) on `dev`.
    /// Panics if the computed result fails the program's own validation.
    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput;

    /// Sanitizer allowlist entries (`checker:kernel-glob` strings, parsed
    /// by `sim-sanitizer`) for hazards this program exhibits *by design* —
    /// the irregular LonestarGPU codes race on purpose; their
    /// timing-dependent behaviour is the phenomenon the paper studies.
    /// Entries are automatically scoped to this program's key.
    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names() {
        assert_eq!(Suite::LonestarGpu.name(), "LonestarGPU");
        assert_eq!(Suite::ALL.len(), 5);
        assert_eq!(format!("{}", Suite::Shoc), "SHOC");
    }

    #[test]
    fn input_spec_builder() {
        let i = InputSpec::new("x", 10, 20, 30, 5.0);
        assert_eq!(i.n, 10);
        assert_eq!(i.mult, 5.0);
    }

    #[test]
    fn cache_keys_are_stable_and_parameter_sensitive() {
        let a = InputSpec::new("x", 10, 20, 30, 5.0);
        assert_eq!(
            a.cache_key(),
            InputSpec::new("x", 10, 20, 30, 5.0).cache_key()
        );
        // Every parameter participates in the identity.
        assert_ne!(
            a.cache_key(),
            InputSpec::new("x", 11, 20, 30, 5.0).cache_key()
        );
        assert_ne!(
            a.cache_key(),
            InputSpec::new("x", 10, 21, 30, 5.0).cache_key()
        );
        assert_ne!(
            a.cache_key(),
            InputSpec::new("x", 10, 20, 31, 5.0).cache_key()
        );
        assert_ne!(
            a.cache_key(),
            InputSpec::new("x", 10, 20, 30, 5.5).cache_key()
        );
        let mut reseeded = a.clone();
        reseeded.seed = 1;
        assert_ne!(a.cache_key(), reseeded.cache_key());
        let spec = BenchSpec {
            key: "lbfs",
            name: "L-BFS",
            suite: Suite::LonestarGpu,
            kernels: 5,
            regular: false,
            description: "",
        };
        assert_eq!(spec.cache_key(), "lbfs@k5");
    }
}
