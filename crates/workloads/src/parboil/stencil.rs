//! STEN — Parboil iterative 7-point Jacobi stencil on a regular 3-D grid.
//! The canonical memory-bound streaming kernel: perfectly coalesced along
//! x, almost no reuse, ~0.5 FLOP per byte.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::f32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 128;

struct StencilKernel {
    src: DevBuffer<f32>,
    dst: DevBuffer<f32>,
    nx: usize,
    ny: usize,
    nz: usize,
    c0: f32,
    c1: f32,
}

impl Kernel for StencilKernel {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.src)
            .buf(&self.dst)
            .u(self.nx as u64)
            .u(self.ny as u64)
            .u(self.nz as u64)
            .f(self.c0)
            .f(self.c1)
            .done()
    }

    fn name(&self) -> &'static str {
        "stencil3d"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let halo = (k.nx * k.ny) as u64; // widest neighbor offset (z +/- 1)
        let dim = block_threads as u64;
        // 4 int + 5 add + 2 fma per interior thread.
        Some(KernelFootprint::per_block(
            grid,
            11.0 * dim as f64,
            |b, fp| {
                let base = b as u64 * dim;
                // src is read-only this sweep (ping-pong partner is dst), so the
                // halo over-approximation is harmless.
                let lo = base.saturating_sub(halo);
                fp.read(&k.src, Span::range(lo, base + dim + halo - lo));
                // Boundary threads skip their store; declaring the full range
                // over-approximates but stays block-disjoint.
                fp.write(&k.dst, Span::range(base, dim));
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let (src, dst) = (self.src, self.dst);
        let (c0, c1) = (self.c0, self.c1);
        blk.for_each_thread(|t| {
            let gid = t.gtid() as usize;
            if gid >= nx * ny * nz {
                return;
            }
            let x = gid % nx;
            let y = (gid / nx) % ny;
            let z = gid / (nx * ny);
            t.int_op(4);
            if x == 0 || y == 0 || z == 0 || x == nx - 1 || y == ny - 1 || z == nz - 1 {
                return; // fixed boundary
            }
            let center = t.ld(&src, gid);
            let sum = t.ld(&src, gid - 1)
                + t.ld(&src, gid + 1)
                + t.ld(&src, gid - nx)
                + t.ld(&src, gid + nx)
                + t.ld(&src, gid - nx * ny)
                + t.ld(&src, gid + nx * ny);
            t.fp32_add(5);
            t.fma32(2);
            t.st(&dst, gid, c0 * center + c1 * sum);
        });
    }
}

/// Host reference single Jacobi sweep.
pub fn host_stencil(grid: &[f32], nx: usize, ny: usize, nz: usize, c0: f32, c1: f32) -> Vec<f32> {
    let mut out = grid.to_vec();
    for z in 1..nz - 1 {
        for y in 1..ny - 1 {
            for x in 1..nx - 1 {
                let i = z * nx * ny + y * nx + x;
                let sum = grid[i - 1]
                    + grid[i + 1]
                    + grid[i - nx]
                    + grid[i + nx]
                    + grid[i - nx * ny]
                    + grid[i + nx * ny];
                out[i] = c0 * grid[i] + c1 * sum;
            }
        }
    }
    out
}

/// The STEN benchmark.
pub struct Stencil3d;

impl Benchmark for Stencil3d {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "sten",
            name: "STEN",
            suite: Suite::Parboil,
            kernels: 1,
            regular: true,
            description: "Iterative 7-point Jacobi stencil on a 3-D grid",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Parboil "small" is 128^3 x 100 iterations; we run a 32^3 grid for
        // 8 sweeps and extrapolate.
        vec![InputSpec::new(
            "\"small\" benchmark input",
            32,
            8,
            0,
            2_270_000.0,
        )]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        let total = n * n * n;
        let sweeps = input.m.max(1);
        let init = f32_vec(total, 0.0, 1.0, input.seed);
        let mut bufs = [dev.alloc_from(&init), dev.alloc::<f32>(total)];
        // dst starts as a copy so boundaries carry over.
        dev.write(&bufs[1], &init);
        let grid = (total as u32).div_ceil(BLOCK);
        let (c0, c1) = (0.5f32, 0.5 / 6.0);
        let mut expect = init;
        for _ in 0..sweeps {
            dev.launch_with(
                &StencilKernel {
                    src: bufs[0],
                    dst: bufs[1],
                    nx: n,
                    ny: n,
                    nz: n,
                    c0,
                    c1,
                },
                grid,
                BLOCK,
                LaunchOpts {
                    work_multiplier: input.mult / sweeps as f64,
                },
            );
            bufs.swap(0, 1);
            expect = host_stencil(&expect, n, n, n, c0, c1);
        }
        let got = dev.read(&bufs[0]);
        for i in 0..total {
            assert!(
                (got[i] - expect[i]).abs() < 1e-4,
                "grid[{i}]: {} vs {}",
                got[i],
                expect[i]
            );
        }
        RunOutput {
            checksum: got.iter().map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn stencil_matches_host() {
        Stencil3d.run(&mut device(), &InputSpec::new("t", 12, 3, 0, 1.0));
    }

    #[test]
    fn stencil_is_memory_bound() {
        let mut dev = device();
        Stencil3d.run(&mut dev, &InputSpec::new("t", 20, 2, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.compute_intensity() < 2.0, "{}", c.compute_intensity());
        // Unit-stride traffic: mostly coalesced.
        let unc = 1.0 - c.ideal_transactions / c.transactions;
        assert!(unc < 0.4, "uncoalesced {unc}");
    }

    #[test]
    fn jacobi_smooths_toward_uniform() {
        // Repeated averaging shrinks the value spread in the interior.
        let n = 10;
        let init = f32_vec(n * n * n, 0.0, 1.0, 3);
        let mut cur = init.clone();
        for _ in 0..20 {
            cur = host_stencil(&cur, n, n, n, 0.5, 0.5 / 6.0);
        }
        let spread = |v: &[f32]| {
            let inner: Vec<f32> = (0..v.len())
                .filter(|&i| {
                    let x = i % n;
                    let y = (i / n) % n;
                    let z = i / (n * n);
                    x > 1 && y > 1 && z > 1 && x < n - 2 && y < n - 2 && z < n - 2
                })
                .map(|i| v[i])
                .collect();
            let max = inner.iter().cloned().fold(f32::MIN, f32::max);
            let min = inner.iter().cloned().fold(f32::MAX, f32::min);
            max - min
        };
        assert!(spread(&cur) < spread(&init) * 0.8);
    }
}
