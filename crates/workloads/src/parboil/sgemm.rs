//! SGEMM — Parboil register/shared-memory-tiled dense matrix multiply
//! (`C = A * B^T` with column-major A and C, matching the Parboil layout).

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::f32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, KernelResources, LaunchOpts, ParamKey,
    Span,
};

const TILE: usize = 16;

struct SgemmKernel {
    a: DevBuffer<f32>,
    b: DevBuffer<f32>,
    c: DevBuffer<f32>,
    n: usize,
}

impl Kernel for SgemmKernel {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.a)
            .buf(&self.b)
            .buf(&self.c)
            .u(self.n as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "sgemm_tiled"
    }
    fn resources(&self) -> KernelResources {
        KernelResources {
            regs_per_thread: 32,
            shared_bytes: (2 * TILE * TILE * 4) as u32,
        }
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let n = k.n as u64;
        let t = TILE as u64;
        let tiles_per_row = k.n / TILE;
        // TILE fmas per thread per k-tile.
        let ops = block_threads as f64 * k.n as f64;
        Some(KernelFootprint::per_block(grid, ops, |blkid, fp| {
            let (brow, bcol) = (
                (blkid as usize / tiles_per_row) as u64,
                (blkid as usize % tiles_per_row) as u64,
            );
            for tr in 0..t {
                // A column-major: the block's TILE rows across every column.
                fp.read(&k.a, Span::strided(brow * t + tr, n, n));
                // B row-major transposed: the block's TILE rows, full width.
                fp.read(&k.b, Span::range((bcol * t + tr) * n, n));
            }
            for tc in 0..t {
                // C column-major: the block's own output tile.
                fp.write(&k.c, Span::range((bcol * t + tc) * n + brow * t, t));
            }
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let n = self.n;
        let tiles_per_row = n / TILE;
        let block = blk.block_idx() as usize;
        let (brow, bcol) = (block / tiles_per_row, block % tiles_per_row);
        let sh_a = blk.shared_alloc::<f32>(TILE * TILE);
        let sh_b = blk.shared_alloc::<f32>(TILE * TILE);
        let (a, b, c) = (self.a, self.b, self.c);
        let mut acc = vec![0.0f32; TILE * TILE];
        for kt in 0..tiles_per_row {
            blk.for_each_thread(|t| {
                let tid = t.tid() as usize;
                let (tr, tc) = (tid / TILE, tid % TILE);
                // A is column-major: A[row, col] = a[col * n + row].
                let av = t.ld(&a, (kt * TILE + tc) * n + brow * TILE + tr);
                // B is transposed (row-major b[j, k]).
                let bv = t.ld(&b, (bcol * TILE + tr) * n + kt * TILE + tc);
                t.sst(&sh_a, tr * TILE + tc, av);
                t.sst(&sh_b, tr * TILE + tc, bv);
            });
            blk.for_each_thread(|t| {
                let tid = t.tid() as usize;
                let (tr, tc) = (tid / TILE, tid % TILE);
                let mut s = acc[tid];
                for k in 0..TILE {
                    s += t.shared_get(&sh_a, tr * TILE + k) * t.shared_get(&sh_b, tc * TILE + k);
                }
                t.fma32(TILE as u32);
                t.smem(2 * TILE as u32);
                acc[tid] = s;
            });
        }
        blk.for_each_thread(|t| {
            let tid = t.tid() as usize;
            let (tr, tc) = (tid / TILE, tid % TILE);
            // C column-major.
            t.st(&c, (bcol * TILE + tc) * n + brow * TILE + tr, acc[tid]);
        });
    }
}

/// Host reference: C = A * B^T (column-major A/C, row-major B).
pub fn host_sgemm(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a[k * n + i] * b[j * n + k];
            }
            c[j * n + i] = s;
        }
    }
    c
}

/// The SGEMM benchmark.
pub struct Sgemm;

impl Benchmark for Sgemm {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "sgemm",
            name: "SGEMM",
            suite: Suite::Parboil,
            kernels: 1,
            regular: true,
            description: "Register-tiled dense matrix-matrix multiplication",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Parboil "small"; the harness re-runs the kernel many times.
        vec![InputSpec::new(
            "\"small\" benchmark input",
            128,
            0,
            0,
            202_000.0,
        )]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        assert!(n.is_multiple_of(TILE));
        let a = f32_vec(n * n, -1.0, 1.0, input.seed);
        let b = f32_vec(n * n, -1.0, 1.0, input.seed + 1);
        let da = dev.alloc_from(&a);
        let db = dev.alloc_from(&b);
        let dc = dev.alloc::<f32>(n * n);
        let grid = ((n / TILE) * (n / TILE)) as u32;
        dev.launch_with(
            &SgemmKernel {
                a: da,
                b: db,
                c: dc,
                n,
            },
            grid,
            (TILE * TILE) as u32,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        let got = dev.read(&dc);
        let expect = host_sgemm(&a, &b, n);
        for i in 0..n * n {
            assert!(
                (got[i] - expect[i]).abs() < 1e-3 * expect[i].abs().max(1.0),
                "C[{i}]: {} vs {}",
                got[i],
                expect[i]
            );
        }
        RunOutput {
            checksum: got.iter().map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn sgemm_matches_host() {
        Sgemm.run(&mut device(), &InputSpec::new("t", 64, 0, 0, 1.0));
    }

    #[test]
    fn sgemm_compute_intensity_is_high() {
        let mut dev = device();
        Sgemm.run(&mut dev, &InputSpec::new("t", 64, 0, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.compute_intensity() > 4.0, "{}", c.compute_intensity());
        assert_eq!(c.divergence(), 0.0);
    }

    #[test]
    fn host_sgemm_identity() {
        let n = 4;
        let mut ident = vec![0.0f32; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..16).map(|x| x as f32).collect();
        let c = host_sgemm(&ident, &b, n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(c[j * n + i], b[j * n + i]);
            }
        }
    }
}
