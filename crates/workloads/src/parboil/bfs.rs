//! P-BFS — Parboil breadth-first search: queue-based, level-synchronous,
//! with atomic frontier enqueue. Input: a road map of the San Francisco
//! Bay Area (321k nodes / 800k edges), replaced by a synthetic road
//! network of the same shape.

use crate::bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
use crate::inputs::graphs::{host_bfs, road_network};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 64;
const INF: u32 = u32::MAX;

struct Frontier {
    row_ptr: DevBuffer<u32>,
    col: DevBuffer<u32>,
    cost: DevBuffer<u32>,
    wl_in: DevBuffer<u32>,
    wl_out: DevBuffer<u32>,
    out_size: DevBuffer<u32>,
    in_size: u32,
}

impl Kernel for Frontier {
    fn name(&self) -> &'static str {
        "pbfs_frontier"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid();
            if i >= k.in_size {
                return;
            }
            let v = t.ld(&k.wl_in, i as usize) as usize;
            let cv = t.ld(&k.cost, v);
            let lo = t.ld(&k.row_ptr, v) as usize;
            let hi = t.ld(&k.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&k.col, e) as usize;
                t.int_op(2);
                if t.atomic_cas_u32(&k.cost, w, INF, cv + 1) == INF {
                    let slot = t.atomic_add_u32(&k.out_size, 0, 1);
                    t.st(&k.wl_out, slot as usize, w as u32);
                }
            }
        });
    }
}

/// The P-BFS benchmark.
pub struct PBfs;

impl Benchmark for PBfs {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "pbfs",
            name: "P-BFS",
            suite: Suite::Parboil,
            kernels: 3,
            regular: false,
            description: "Queue-based BFS (shortest-path cost, uniform weights)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // SF Bay Area road map: 321k nodes, 800k edges.
        vec![InputSpec::new("SF Bay road map", 56, 56, 0, 23_500.0)]
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // Frontier expansion claims levels with atomics but reads them
        // plainly in the same pass; monotonic levels keep the result exact.
        &["race-global:pbfs_frontier"]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let g = road_network(input.n, input.m, input.seed);
        let src = g.n / 2;
        let k = Frontier {
            row_ptr: dev.alloc_from(&g.row_ptr),
            col: dev.alloc_from(&g.col),
            cost: dev.alloc_init(g.n, INF),
            wl_in: dev.alloc::<u32>(g.n + 1),
            wl_out: dev.alloc::<u32>(g.n + 1),
            out_size: dev.alloc::<u32>(1),
            in_size: 1,
        };
        dev.write_at(&k.cost, src, 0);
        dev.write_at(&k.wl_in, 0, src as u32);
        let mut in_size = 1u32;
        let mut flip = false;
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        while in_size > 0 {
            dev.fill(&k.out_size, 0);
            let (wi, wo) = if flip {
                (k.wl_out, k.wl_in)
            } else {
                (k.wl_in, k.wl_out)
            };
            dev.launch_with(
                &Frontier {
                    wl_in: wi,
                    wl_out: wo,
                    in_size,
                    ..k
                },
                in_size.div_ceil(BLOCK),
                BLOCK,
                opts,
            );
            in_size = dev.read_at(&k.out_size, 0);
            flip = !flip;
        }
        let got = dev.read(&k.cost);
        assert_eq!(got, host_bfs(&g, src), "P-BFS cost mismatch");
        RunOutput {
            checksum: got.iter().filter(|&&c| c != INF).count() as f64,
            items: Some(ItemCounts {
                vertices: 321_000,
                edges: 800_000,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn pbfs_matches_host() {
        PBfs.run(&mut device(), &InputSpec::new("t", 20, 20, 0, 1.0));
    }

    #[test]
    fn pbfs_level_count_is_graph_diameterish() {
        let mut dev = device();
        PBfs.run(&mut dev, &InputSpec::new("t", 20, 20, 0, 1.0));
        let launches = dev.stats().len();
        assert!(launches > 15 && launches < 80, "launches {launches}");
    }

    #[test]
    fn pbfs_touches_each_edge_once() {
        let mut dev = device();
        let input = InputSpec::new("t", 16, 16, 0, 1.0);
        PBfs.run(&mut dev, &input);
        let g = road_network(16, 16, input.seed);
        let c = dev.total_counters();
        // Frontier BFS does O(m) edge work, far below n*diameter.
        let edge_touches = c.atomics;
        assert!(
            edge_touches < 1.5 * g.num_edges() as f64 + 64.0,
            "atomics {edge_touches} vs edges {}",
            g.num_edges()
        );
    }
}
