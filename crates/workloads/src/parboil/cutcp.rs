//! CUTCP — Parboil distance-cutoff Coulombic potential: short-range
//! electrostatic potential of point charges accumulated onto a 3-D lattice,
//! using spatial binning so each grid point only visits nearby atoms.
//! Compute-bound with SFU-heavy inner loops and excellent locality.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::points::lattice_atoms;
use crate::inputs::util::f32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 128;

struct CutcpKernel {
    atom_xyz: DevBuffer<f32>,
    atom_q: DevBuffer<f32>,
    bin_start: DevBuffer<u32>,
    bin_atoms: DevBuffer<u32>,
    grid_pot: DevBuffer<f32>,
    grid_dim: usize,
    bins_per_side: usize,
    box_len: f32,
    cutoff2: f32,
}

impl Kernel for CutcpKernel {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.atom_xyz)
            .buf(&self.atom_q)
            .buf(&self.bin_start)
            .buf(&self.bin_atoms)
            .buf(&self.grid_pot)
            .u(self.grid_dim as u64)
            .u(self.bins_per_side as u64)
            .f(self.box_len)
            .f(self.cutoff2)
            .done()
    }

    fn name(&self) -> &'static str {
        "cutcp_lattice"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        // Each thread scans the 3x3x3 bin neighborhood: roughly
        // 27 / bins^3 of all atoms, ~6 ops per candidate.
        let bins = (k.bins_per_side * k.bins_per_side * k.bins_per_side) as f64;
        let per_thread = 27.0 / bins * k.bin_atoms.len() as f64 * 6.0;
        Some(KernelFootprint::per_block(
            grid,
            per_thread * block_threads as f64,
            |b, fp| {
                // Bin membership is data-dependent; the atom-side buffers are
                // read-only, so whole-buffer reads are sound.
                fp.read_all(&k.bin_start);
                fp.read_all(&k.bin_atoms);
                fp.read_all(&k.atom_xyz);
                fp.read_all(&k.atom_q);
                fp.write(
                    &k.grid_pot,
                    Span::range(b as u64 * block_threads as u64, block_threads as u64),
                );
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let gd = k.grid_dim;
        let spacing = k.box_len / gd as f32;
        let bps = k.bins_per_side;
        let bin_w = k.box_len / bps as f32;
        blk.for_each_thread(|t| {
            let gid = t.gtid() as usize;
            if gid >= gd * gd * gd {
                return;
            }
            let gx = (gid % gd) as f32 * spacing;
            let gy = ((gid / gd) % gd) as f32 * spacing;
            let gz = (gid / (gd * gd)) as f32 * spacing;
            let mut pot = 0.0f32;
            // Visit the 3x3x3 neighborhood of bins.
            let bx = (gx / bin_w) as i32;
            let by = (gy / bin_w) as i32;
            let bz = (gz / bin_w) as i32;
            t.int_op(8);
            for dz in -1..=1i32 {
                for dy in -1..=1i32 {
                    for dx in -1..=1i32 {
                        let (nx, ny, nz) = (bx + dx, by + dy, bz + dz);
                        if nx < 0
                            || ny < 0
                            || nz < 0
                            || nx >= bps as i32
                            || ny >= bps as i32
                            || nz >= bps as i32
                        {
                            continue;
                        }
                        let bin = (nz as usize * bps + ny as usize) * bps + nx as usize;
                        let lo = t.ld(&k.bin_start, bin) as usize;
                        let hi = t.ld(&k.bin_start, bin + 1) as usize;
                        for s in lo..hi {
                            let a = t.ld(&k.bin_atoms, s) as usize;
                            let ax = t.ld(&k.atom_xyz, 3 * a);
                            let ay = t.ld(&k.atom_xyz, 3 * a + 1);
                            let az = t.ld(&k.atom_xyz, 3 * a + 2);
                            let d2 = (ax - gx) * (ax - gx)
                                + (ay - gy) * (ay - gy)
                                + (az - gz) * (az - gz);
                            t.fma32(4);
                            if d2 < k.cutoff2 {
                                let q = t.ld(&k.atom_q, a);
                                // q/r * smooth cutoff term.
                                let inv_r = 1.0 / d2.max(1e-4).sqrt();
                                let s2 = 1.0 - d2 / k.cutoff2;
                                pot += q * inv_r * s2 * s2;
                                t.sfu(1);
                                t.fma32(4);
                            }
                        }
                    }
                }
            }
            t.st(&k.grid_pot, gid, pot);
        });
    }
}

/// Host reference (direct cutoff sum over all atoms).
pub fn host_cutcp(
    atoms: &[[f32; 3]],
    q: &[f32],
    grid_dim: usize,
    box_len: f32,
    cutoff2: f32,
) -> Vec<f32> {
    let spacing = box_len / grid_dim as f32;
    let mut pot = vec![0.0f32; grid_dim * grid_dim * grid_dim];
    #[allow(clippy::needless_range_loop)]
    for gid in 0..pot.len() {
        let gx = (gid % grid_dim) as f32 * spacing;
        let gy = ((gid / grid_dim) % grid_dim) as f32 * spacing;
        let gz = (gid / (grid_dim * grid_dim)) as f32 * spacing;
        for (a, p) in atoms.iter().enumerate() {
            let d2 = (p[0] - gx).powi(2) + (p[1] - gy).powi(2) + (p[2] - gz).powi(2);
            if d2 < cutoff2 {
                let inv_r = 1.0 / d2.max(1e-4).sqrt();
                let s2 = 1.0 - d2 / cutoff2;
                pot[gid] += q[a] * inv_r * s2 * s2;
            }
        }
    }
    pot
}

/// The CUTCP benchmark.
pub struct Cutcp;

impl Benchmark for Cutcp {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "cutcp",
            name: "CUTCP",
            suite: Suite::Parboil,
            kernels: 1,
            regular: true,
            description: "Distance-cutoff Coulombic potential on a 3-D lattice",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: watbox.s1100.pqr (a solvated-protein water box);
        // n = lattice dim, m = atom count.
        vec![InputSpec::new("watbox.sl100.pqr", 24, 1200, 0, 1_700.0)]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let box_len = 16.0f32;
        let cutoff = box_len / 4.0;
        let atoms = lattice_atoms(input.m, box_len, input.seed);
        let charges = f32_vec(input.m, -1.0, 1.0, input.seed + 1);
        // Bin atoms so each bin is >= cutoff wide (3x3x3 suffices).
        let bps = (box_len / cutoff).floor() as usize;
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); bps * bps * bps];
        let bin_w = box_len / bps as f32;
        for (i, p) in atoms.iter().enumerate() {
            let bx = ((p[0] / bin_w) as usize).min(bps - 1);
            let by = ((p[1] / bin_w) as usize).min(bps - 1);
            let bz = ((p[2] / bin_w) as usize).min(bps - 1);
            bins[(bz * bps + by) * bps + bx].push(i as u32);
        }
        let mut bin_start = vec![0u32; bins.len() + 1];
        for (i, b) in bins.iter().enumerate() {
            bin_start[i + 1] = bin_start[i] + b.len() as u32;
        }
        let flat: Vec<u32> = bins.concat();
        let xyz: Vec<f32> = atoms.iter().flat_map(|p| p.to_vec()).collect();
        let k = CutcpKernel {
            atom_xyz: dev.alloc_from(&xyz),
            atom_q: dev.alloc_from(&charges),
            bin_start: dev.alloc_from(&bin_start),
            bin_atoms: dev.alloc_from(&flat),
            grid_pot: dev.alloc::<f32>(input.n * input.n * input.n),
            grid_dim: input.n,
            bins_per_side: bps,
            box_len,
            cutoff2: cutoff * cutoff,
        };
        let total = (input.n * input.n * input.n) as u32;
        dev.launch_with(
            &k,
            total.div_ceil(BLOCK),
            BLOCK,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        let got = dev.read(&k.grid_pot);
        let expect = host_cutcp(&atoms, &charges, input.n, box_len, cutoff * cutoff);
        for i in (0..got.len()).step_by(53) {
            assert!(
                (got[i] - expect[i]).abs() < 1e-3 * expect[i].abs().max(1.0),
                "pot[{i}]: {} vs {}",
                got[i],
                expect[i]
            );
        }
        RunOutput {
            checksum: got.iter().map(|&v| v.abs() as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn cutcp_matches_direct_sum() {
        Cutcp.run(&mut device(), &InputSpec::new("t", 10, 200, 0, 1.0));
    }

    #[test]
    fn cutoff_limits_interactions() {
        // Each grid point interacts with far fewer atoms than all of them.
        let mut dev = device();
        Cutcp.run(&mut dev, &InputSpec::new("t", 10, 400, 0, 1.0));
        let c = dev.total_counters();
        let per_point = c.lane_ops[2] / (10.0f64 * 10.0 * 10.0);
        // 4 FMA per distance check; all-atoms would be 400*4+.
        assert!(per_point < 400.0 * 4.0 * 0.8, "per point {per_point}");
    }
}
