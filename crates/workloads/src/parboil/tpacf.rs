//! TPACF — Parboil two-point angular correlation function: statistical
//! analysis of astronomical body positions. All pairs of sky positions are
//! binned by angular separation (dot product + acos into logarithmic
//! bins), with shared-memory histogram accumulation.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::points::sky_points;
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts};

const BLOCK: u32 = 128;
const NUM_BINS: usize = 32;

struct TpacfKernel {
    xyz: DevBuffer<f32>,
    bins: DevBuffer<u32>,
    n: usize,
}

fn bin_of(dot: f32) -> usize {
    // Logarithmic angular bins over cos(theta) in (-1, 1].
    let theta = dot.clamp(-1.0, 1.0).acos();
    let frac = (theta / std::f32::consts::PI).clamp(1e-6, 1.0);
    ((frac.log2() + 20.0) / 20.0 * NUM_BINS as f32).clamp(0.0, NUM_BINS as f32 - 1.0) as usize
}

impl Kernel for TpacfKernel {
    fn name(&self) -> &'static str {
        "tpacf_histogram"
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        // ~10 ops per pair, n(n-1)/2 pairs split across the grid.
        let pairs = k.n as f64 * (k.n as f64 - 1.0) / 2.0;
        let ops = 10.0 * pairs / grid.max(1) as f64;
        Some(KernelFootprint::per_block(grid, ops, |_b, fp| {
            // Thread i pairs with every j > i: effectively the whole sky.
            fp.read_all(&k.xyz);
            fp.atomic_all(&k.bins);
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let n = k.n;
        let local = blk.shared_alloc::<u32>(NUM_BINS);
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= n {
                return;
            }
            let (xi, yi, zi) = (
                t.ld(&k.xyz, 3 * i),
                t.ld(&k.xyz, 3 * i + 1),
                t.ld(&k.xyz, 3 * i + 2),
            );
            for j in (i + 1)..n {
                let dot = xi * t.ld(&k.xyz, 3 * j)
                    + yi * t.ld(&k.xyz, 3 * j + 1)
                    + zi * t.ld(&k.xyz, 3 * j + 2);
                let b = bin_of(dot);
                let cur = t.shared_get(&local, b);
                t.shared_set(&local, b, cur + 1);
            }
            let m = (n - i - 1) as u32;
            t.fma32(3 * m);
            t.sfu(2 * m);
            t.smem(2 * m);
            t.int_op(3 * m);
        });
        // Flush the block-local histogram with atomics.
        blk.for_each_thread(|t| {
            let b = t.tid() as usize;
            if b < NUM_BINS {
                let v = t.shared_get(&local, b);
                t.smem(1);
                if v > 0 {
                    t.atomic_add_u32(&k.bins, b, v);
                }
            }
        });
    }
}

/// Host reference histogram.
pub fn host_tpacf(points: &[[f32; 3]]) -> Vec<u32> {
    let mut bins = vec![0u32; NUM_BINS];
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let dot = points[i][0] * points[j][0]
                + points[i][1] * points[j][1]
                + points[i][2] * points[j][2];
            bins[bin_of(dot)] += 1;
        }
    }
    bins
}

/// The TPACF benchmark.
pub struct Tpacf;

impl Benchmark for Tpacf {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "tpacf",
            name: "TPACF",
            suite: Suite::Parboil,
            kernels: 1,
            regular: true,
            description: "Two-point angular correlation of astronomical bodies",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(
            "\"small\" benchmark input",
            1536,
            0,
            0,
            4_400.0,
        )]
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // The port accumulates the per-block angular histogram in shared
        // memory with plain read-modify-writes (the model executes a
        // block's threads in order, so no update is lost); flagged so the
        // simplification stays visible.
        &["race-shared:tpacf_histogram"]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let points = sky_points(input.n, input.seed);
        let xyz: Vec<f32> = points.iter().flat_map(|p| p.to_vec()).collect();
        let k = TpacfKernel {
            xyz: dev.alloc_from(&xyz),
            bins: dev.alloc::<u32>(NUM_BINS),
            n: input.n,
        };
        dev.launch_with(
            &k,
            (input.n as u32).div_ceil(BLOCK),
            BLOCK,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        let got = dev.read(&k.bins);
        let expect = host_tpacf(&points);
        assert_eq!(got, expect, "TPACF histogram mismatch");
        let total: u64 = got.iter().map(|&v| v as u64).sum();
        assert_eq!(total as usize, input.n * (input.n - 1) / 2);
        RunOutput {
            checksum: total as f64,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn tpacf_matches_host() {
        Tpacf.run(&mut device(), &InputSpec::new("t", 300, 0, 0, 1.0));
    }

    #[test]
    fn clustering_skews_the_histogram() {
        // Clustered points produce an excess of small-angle pairs compared
        // to a uniform distribution of the same size.
        let clustered = host_tpacf(&sky_points(400, 1));
        let small_angle: u64 = clustered[..NUM_BINS / 2].iter().map(|&v| v as u64).sum();
        assert!(small_angle > 0);
    }

    #[test]
    fn bins_are_in_range() {
        for dot in [-1.0f32, -0.5, 0.0, 0.5, 0.99, 1.0] {
            assert!(bin_of(dot) < NUM_BINS);
        }
    }
}
