//! Parboil: throughput-computing benchmarks (UIUC IMPACT). Mostly regular
//! codes spanning the compute-bound (MRIQ, CUTCP) to heavily memory-bound
//! (LBM, STEN) spectrum.

pub mod bfs;
pub mod cutcp;
pub mod histo;
pub mod lbm;
pub mod mriq;
pub mod sad;
pub mod sgemm;
pub mod stencil;
pub mod tpacf;

pub use bfs::PBfs;
pub use cutcp::Cutcp;
pub use histo::Histo;
pub use lbm::Lbm;
pub use mriq::Mriq;
pub use sad::Sad;
pub use sgemm::Sgemm;
pub use stencil::Stencil3d;
pub use tpacf::Tpacf;
