//! SAD — Parboil sum-of-absolute-differences, the motion-estimation kernel
//! of MPEG encoders: every 16x16 macroblock of the current frame is
//! compared against all candidate positions in a search window of the
//! reference frame. Integer-dominated with heavy data reuse.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::u32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const MB: usize = 16;

struct SadKernel {
    cur: DevBuffer<u32>,
    refr: DevBuffer<u32>,
    out: DevBuffer<u32>,
    width: usize,
    height: usize,
    search: usize,
}

impl Kernel for SadKernel {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.cur)
            .buf(&self.refr)
            .buf(&self.out)
            .u(self.width as u64)
            .u(self.height as u64)
            .u(self.search as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "sad_macroblock"
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let mbs_x = k.width / MB;
        let win = 2 * k.search + 1;
        let ops = (win * win * MB * MB * 4) as f64;
        Some(KernelFootprint::per_block(grid, ops, |b, fp| {
            let mb = b as usize;
            let (mbx, mby) = (mb % mbs_x, mb / mbs_x);
            // Current frame: the macroblock itself, row by row.
            for py in 0..MB {
                let cy = mby * MB + py;
                fp.read(
                    &k.cur,
                    Span::range((cy * k.width + mbx * MB) as u64, MB as u64),
                );
            }
            // Reference frame: the clamped search window around it.
            let ry0 = (mby * MB).saturating_sub(k.search);
            let ry1 = (mby * MB + MB - 1 + k.search).min(k.height - 1);
            let rx0 = (mbx * MB).saturating_sub(k.search);
            let rx1 = (mbx * MB + MB - 1 + k.search).min(k.width - 1);
            for ry in ry0..=ry1 {
                fp.read(
                    &k.refr,
                    Span::range((ry * k.width + rx0) as u64, (rx1 - rx0 + 1) as u64),
                );
            }
            // One SAD per candidate offset.
            fp.write(
                &k.out,
                Span::range((mb * win * win) as u64, (win * win) as u64),
            );
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let mbs_x = k.width / MB;
        let win = 2 * k.search + 1;
        // One block per macroblock; each thread handles one candidate
        // offset of the search window.
        let mb = blk.block_idx() as usize;
        let (mbx, mby) = (mb % mbs_x, mb / mbs_x);
        blk.for_each_thread(|t| {
            let cand = t.tid() as usize;
            if cand >= win * win {
                return;
            }
            let dx = (cand % win) as i32 - k.search as i32;
            let dy = (cand / win) as i32 - k.search as i32;
            let mut sad = 0u32;
            for py in 0..MB {
                for px in 0..MB {
                    let cx = (mbx * MB + px) as i32;
                    let cy = (mby * MB + py) as i32;
                    let rx = (cx + dx).clamp(0, k.width as i32 - 1);
                    let ry = (cy + dy).clamp(0, k.height as i32 - 1);
                    let a = t.ld(&k.cur, cy as usize * k.width + cx as usize);
                    let b = t.ld(&k.refr, ry as usize * k.width + rx as usize);
                    sad += a.abs_diff(b);
                }
            }
            t.int_op((MB * MB * 4) as u32);
            t.st(&k.out, mb * win * win + cand, sad);
        });
    }
}

/// Host reference SAD for one macroblock/candidate.
#[allow(clippy::too_many_arguments)]
pub fn host_sad(
    cur: &[u32],
    refr: &[u32],
    width: usize,
    height: usize,
    mbx: usize,
    mby: usize,
    dx: i32,
    dy: i32,
) -> u32 {
    let mut sad = 0u32;
    for py in 0..MB {
        for px in 0..MB {
            let cx = (mbx * MB + px) as i32;
            let cy = (mby * MB + py) as i32;
            let rx = (cx + dx).clamp(0, width as i32 - 1);
            let ry = (cy + dy).clamp(0, height as i32 - 1);
            sad += cur[cy as usize * width + cx as usize]
                .abs_diff(refr[ry as usize * width + rx as usize]);
        }
    }
    sad
}

/// The SAD benchmark.
pub struct Sad;

impl Benchmark for Sad {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "sad",
            name: "SAD",
            suite: Suite::Parboil,
            kernels: 3,
            regular: true,
            description: "Sum of absolute differences (MPEG motion estimation)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // n = frame width/height, m = search radius.
        vec![InputSpec::new("default input", 96, 7, 0, 52_000.0)]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let (w, h) = (input.n, input.n);
        let search = input.m;
        let win = 2 * search + 1;
        let cur = u32_vec(w * h, 256, input.seed);
        let refr = u32_vec(w * h, 256, input.seed + 1);
        let k = SadKernel {
            cur: dev.alloc_from(&cur),
            refr: dev.alloc_from(&refr),
            out: dev.alloc::<u32>((w / MB) * (h / MB) * win * win),
            width: w,
            height: h,
            search,
        };
        let mbs = ((w / MB) * (h / MB)) as u32;
        let block = ((win * win).div_ceil(32) * 32) as u32;
        dev.launch_with(
            &k,
            mbs,
            block,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        let got = dev.read(&k.out);
        // Spot-check against the host reference.
        let mbs_x = w / MB;
        for mb in 0..(mbs as usize) {
            let cand = (mb * 7) % (win * win);
            let dx = (cand % win) as i32 - search as i32;
            let dy = (cand / win) as i32 - search as i32;
            let expect = host_sad(&cur, &refr, w, h, mb % mbs_x, mb / mbs_x, dx, dy);
            assert_eq!(got[mb * win * win + cand], expect, "SAD mismatch at {mb}");
        }
        RunOutput {
            checksum: got.iter().map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn sad_matches_host() {
        Sad.run(&mut device(), &InputSpec::new("t", 32, 2, 0, 1.0));
    }

    #[test]
    fn identical_frames_have_zero_sad_at_origin() {
        let w = 32;
        let frame = u32_vec(w * w, 256, 1);
        assert_eq!(host_sad(&frame, &frame, w, w, 0, 0, 0, 0), 0);
        assert!(host_sad(&frame, &frame, w, w, 0, 0, 1, 0) > 0);
    }

    #[test]
    fn sad_is_integer_dominated() {
        let mut dev = device();
        Sad.run(&mut dev, &InputSpec::new("t", 32, 2, 0, 1.0));
        let c = dev.total_counters();
        assert!(
            c.lane_ops[4] > c.flops(),
            "int {} fp {}",
            c.lane_ops[4],
            c.flops()
        );
    }
}
