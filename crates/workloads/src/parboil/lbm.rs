//! LBM — Parboil Lattice-Boltzmann fluid dynamics (lid-driven cavity).
//!
//! The paper's 3-D D3Q19 simulation is reduced to the standard D2Q9
//! lattice (documented in DESIGN.md): identical computational shape — a
//! streaming step gathering nine distribution values from neighbors and a
//! BGK collision step — and the same extreme memory-boundedness. LBM is
//! the paper's worst case at the 324-MHz memory clock (7.75x slowdown,
//! 2x energy).

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 128;
const Q: usize = 9;
const CX: [i32; Q] = [0, 1, 0, -1, 0, 1, -1, -1, 1];
const CY: [i32; Q] = [0, 0, 1, 0, -1, 1, 1, -1, -1];
const W: [f32; Q] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];
const OMEGA: f32 = 1.2;
const LID_U: f32 = 0.08;

struct LbmStep {
    f_in: DevBuffer<f32>,
    f_out: DevBuffer<f32>,
    nx: usize,
    ny: usize,
}

#[allow(clippy::needless_range_loop)]
fn collide(f: &mut [f32; Q], lid: bool) {
    let rho: f32 = f.iter().sum();
    let mut ux = (f[1] + f[5] + f[8] - f[3] - f[6] - f[7]) / rho;
    let mut uy = (f[2] + f[5] + f[6] - f[4] - f[7] - f[8]) / rho;
    if lid {
        ux = LID_U;
        uy = 0.0;
    }
    let usq = 1.5 * (ux * ux + uy * uy);
    for q in 0..Q {
        let cu = 3.0 * (CX[q] as f32 * ux + CY[q] as f32 * uy);
        let feq = W[q] * rho * (1.0 + cu + 0.5 * cu * cu - usq);
        f[q] += OMEGA * (feq - f[q]);
    }
}

impl Kernel for LbmStep {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.f_in)
            .buf(&self.f_out)
            .u(self.nx as u64)
            .u(self.ny as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "lbm_stream_collide"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let cells = (k.nx * k.ny) as u64;
        let halo = k.nx as u64 + 1; // widest upwind offset (diagonal row)
        let dim = block_threads as u64;
        // Per cell: 9 gathers (4 int each) + 40 fma + 1 sfu.
        Some(KernelFootprint::per_block(
            grid,
            77.0 * dim as f64,
            |b, fp| {
                let base = b as u64 * dim;
                if base >= cells {
                    return;
                }
                let cnt = dim.min(cells - base);
                for q in 0..Q as u64 {
                    // f_in is read-only this step (ping-pong): pad the block's
                    // cell range by the stencil halo within each q-plane.
                    let lo = base.saturating_sub(halo);
                    let hi = (base + cnt + halo).min(cells);
                    fp.read(&k.f_in, Span::range(q * cells + lo, hi - lo));
                    fp.write(&k.f_out, Span::range(q * cells + base, cnt));
                }
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let (nx, ny) = (self.nx, self.ny);
        let (f_in, f_out) = (self.f_in, self.f_out);
        blk.for_each_thread(|t| {
            let cell = t.gtid() as usize;
            if cell >= nx * ny {
                return;
            }
            let x = (cell % nx) as i32;
            let y = (cell / nx) as i32;
            // Stream: gather the nine populations from upwind neighbors
            // (bounce-back at walls).
            let mut f = [0.0f32; Q];
            for q in 0..Q {
                let sx = x - CX[q];
                let sy = y - CY[q];
                t.int_op(4);
                if sx < 0 || sy < 0 || sx >= nx as i32 || sy >= ny as i32 {
                    // Bounce back: take the opposite population from self.
                    let opp = [0, 3, 4, 1, 2, 7, 8, 5, 6][q];
                    f[q] = t.ld(&f_in, opp * nx * ny + cell);
                } else {
                    f[q] = t.ld(&f_in, q * nx * ny + (sy as usize) * nx + sx as usize);
                }
            }
            // Collide (BGK); the top row is the moving lid.
            let lid = y == ny as i32 - 1;
            collide(&mut f, lid);
            t.fma32(40);
            t.sfu(1);
            #[allow(clippy::needless_range_loop)]
            for q in 0..Q {
                t.st(&f_out, q * nx * ny + cell, f[q]);
            }
        });
    }
}

/// Host reference step (identical arithmetic).
pub fn host_lbm_step(f_in: &[f32], nx: usize, ny: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; f_in.len()];
    for cell in 0..nx * ny {
        let x = (cell % nx) as i32;
        let y = (cell / nx) as i32;
        let mut f = [0.0f32; Q];
        for q in 0..Q {
            let sx = x - CX[q];
            let sy = y - CY[q];
            if sx < 0 || sy < 0 || sx >= nx as i32 || sy >= ny as i32 {
                let opp = [0, 3, 4, 1, 2, 7, 8, 5, 6][q];
                f[q] = f_in[opp * nx * ny + cell];
            } else {
                f[q] = f_in[q * nx * ny + (sy as usize) * nx + sx as usize];
            }
        }
        collide(&mut f, y == ny as i32 - 1);
        for q in 0..Q {
            out[q * nx * ny + cell] = f[q];
        }
    }
    out
}

/// The LBM benchmark.
pub struct Lbm;

impl Benchmark for Lbm {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "lbm",
            name: "LBM",
            suite: Suite::Parboil,
            kernels: 1,
            regular: true,
            description: "Lattice-Boltzmann lid-driven cavity (BGK collision)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 3000- and 100-timestep inputs.
        vec![
            InputSpec::new("3000 timesteps", 48, 12, 0, 15_000_000.0),
            InputSpec::new("100 timesteps", 48, 6, 0, 1_500_000.0),
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let (nx, ny) = (input.n, input.n);
        let steps = input.m.max(1);
        // Uniform initial density 1.0 at rest.
        let mut init = vec![0.0f32; Q * nx * ny];
        for q in 0..Q {
            for c in 0..nx * ny {
                init[q * nx * ny + c] = W[q];
            }
        }
        let mut bufs = [dev.alloc_from(&init), dev.alloc::<f32>(Q * nx * ny)];
        let grid = ((nx * ny) as u32).div_ceil(BLOCK);
        let mut expect = init;
        for _ in 0..steps {
            dev.launch_with(
                &LbmStep {
                    f_in: bufs[0],
                    f_out: bufs[1],
                    nx,
                    ny,
                },
                grid,
                BLOCK,
                LaunchOpts {
                    work_multiplier: input.mult / steps as f64,
                },
            );
            bufs.swap(0, 1);
            expect = host_lbm_step(&expect, nx, ny);
        }
        let got = dev.read(&bufs[0]);
        for i in 0..got.len() {
            assert!(
                (got[i] - expect[i]).abs() < 1e-4,
                "f[{i}]: {} vs {}",
                got[i],
                expect[i]
            );
        }
        // Mass conservation (no inflow/outflow).
        let mass: f64 = got.iter().map(|&v| v as f64).sum();
        let expected_mass = (nx * ny) as f64;
        assert!(
            (mass - expected_mass).abs() < 1e-2 * expected_mass,
            "mass {mass} vs {expected_mass}"
        );
        RunOutput {
            checksum: mass,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn lbm_matches_host_and_conserves_mass() {
        Lbm.run(&mut device(), &InputSpec::new("t", 16, 4, 0, 1.0));
    }

    #[test]
    fn lid_drives_flow() {
        // After some steps the cell row under the lid should have positive
        // x-momentum.
        let (nx, ny) = (16, 16);
        let mut f = vec![0.0f32; Q * nx * ny];
        for q in 0..Q {
            for c in 0..nx * ny {
                f[q * nx * ny + c] = W[q];
            }
        }
        for _ in 0..30 {
            f = host_lbm_step(&f, nx, ny);
        }
        let row = ny - 2;
        let mut ux_sum = 0.0f32;
        for x in 1..nx - 1 {
            let cell = row * nx + x;
            let ux = f[nx * ny + cell] + f[5 * nx * ny + cell] + f[8 * nx * ny + cell]
                - f[3 * nx * ny + cell]
                - f[6 * nx * ny + cell]
                - f[7 * nx * ny + cell];
            ux_sum += ux;
        }
        assert!(ux_sum > 0.0, "no flow under the lid: {ux_sum}");
    }

    #[test]
    fn lbm_is_strongly_memory_bound() {
        let mut dev = device();
        Lbm.run(&mut dev, &InputSpec::new("t", 24, 2, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.compute_intensity() < 1.5, "{}", c.compute_intensity());
    }
}
