//! MRIQ — Parboil magnetic-resonance-image reconstruction, Q-matrix
//! computation: for every voxel, a sum of cos/sin phase terms over the
//! k-space trajectory. Almost pure FP32 + SFU work over tiny inputs — the
//! classic compute-bound code.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::f32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 256;
const TWO_PI: f32 = 2.0 * std::f32::consts::PI;

struct QKernel {
    kx: DevBuffer<f32>,
    ky: DevBuffer<f32>,
    kz: DevBuffer<f32>,
    phi_mag: DevBuffer<f32>,
    x: DevBuffer<f32>,
    y: DevBuffer<f32>,
    z: DevBuffer<f32>,
    qr: DevBuffer<f32>,
    qi: DevBuffer<f32>,
    num_k: usize,
    num_x: usize,
}

impl Kernel for QKernel {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.kx)
            .buf(&self.ky)
            .buf(&self.kz)
            .buf(&self.phi_mag)
            .buf(&self.x)
            .buf(&self.y)
            .buf(&self.z)
            .buf(&self.qr)
            .buf(&self.qi)
            .u(self.num_k as u64)
            .u(self.num_x as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "mriq_computeQ"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        // 6 fma + 2 sfu per k-space sample per voxel thread.
        let ops = block_threads as f64 * 8.0 * k.num_k as f64;
        Some(KernelFootprint::per_block(grid, ops, |b, fp| {
            let own = Span::range(b as u64 * block_threads as u64, block_threads as u64);
            fp.read(&k.x, own);
            fp.read(&k.y, own);
            fp.read(&k.z, own);
            // Every block walks the whole k-space trajectory.
            fp.read_all(&k.kx);
            fp.read_all(&k.ky);
            fp.read_all(&k.kz);
            fp.read_all(&k.phi_mag);
            fp.write(&k.qr, own);
            fp.write(&k.qi, own);
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let dim = blk.block_dim() as usize;
        // The real code stages k-space data through constant memory; we
        // tile it through shared memory, one tile per barrier phase.
        let tk = blk.shared_alloc::<f32>(4 * dim);
        let mut pos = vec![[0.0f32; 3]; dim];
        let mut acc = vec![[0.0f32; 2]; dim];
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i < k.num_x {
                pos[t.tid() as usize] = [t.ld(&k.x, i), t.ld(&k.y, i), t.ld(&k.z, i)];
            }
        });
        let tiles = k.num_k.div_ceil(dim);
        for tile in 0..tiles {
            let base = tile * dim;
            let cnt = dim.min(k.num_k - base);
            blk.for_each_thread(|t| {
                let j = base + t.tid() as usize;
                if j < k.num_k {
                    let ti = t.tid() as usize;
                    let v = (
                        t.ld(&k.kx, j),
                        t.ld(&k.ky, j),
                        t.ld(&k.kz, j),
                        t.ld(&k.phi_mag, j),
                    );
                    t.sst(&tk, 4 * ti, v.0);
                    t.sst(&tk, 4 * ti + 1, v.1);
                    t.sst(&tk, 4 * ti + 2, v.2);
                    t.sst(&tk, 4 * ti + 3, v.3);
                }
            });
            blk.for_each_thread(|t| {
                let i = t.gtid() as usize;
                if i >= k.num_x {
                    return;
                }
                let ti = t.tid() as usize;
                let p = pos[ti];
                let a = &mut acc[ti];
                for s in 0..cnt {
                    let phase = TWO_PI
                        * (t.shared_get(&tk, 4 * s) * p[0]
                            + t.shared_get(&tk, 4 * s + 1) * p[1]
                            + t.shared_get(&tk, 4 * s + 2) * p[2]);
                    let mag = t.shared_get(&tk, 4 * s + 3);
                    a[0] += mag * phase.cos();
                    a[1] += mag * phase.sin();
                }
                t.fma32(6 * cnt as u32);
                t.sfu(2 * cnt as u32);
                t.smem(4 * cnt as u32);
            });
        }
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i < k.num_x {
                let a = acc[t.tid() as usize];
                t.st(&k.qr, i, a[0]);
                t.st(&k.qi, i, a[1]);
            }
        });
    }
}

/// Host reference.
#[allow(clippy::too_many_arguments)]
pub fn host_q(
    kx: &[f32],
    ky: &[f32],
    kz: &[f32],
    mag: &[f32],
    x: &[f32],
    y: &[f32],
    z: &[f32],
) -> (Vec<f32>, Vec<f32>) {
    let mut qr = vec![0.0f32; x.len()];
    let mut qi = vec![0.0f32; x.len()];
    for i in 0..x.len() {
        for s in 0..kx.len() {
            let phase = TWO_PI * (kx[s] * x[i] + ky[s] * y[i] + kz[s] * z[i]);
            qr[i] += mag[s] * phase.cos();
            qi[i] += mag[s] * phase.sin();
        }
    }
    (qr, qi)
}

/// The MRIQ benchmark.
pub struct Mriq;

impl Benchmark for Mriq {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "mriq",
            name: "MRIQ",
            suite: Suite::Parboil,
            kernels: 2,
            regular: true,
            description: "MRI reconstruction Q-matrix (non-Cartesian k-space)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 64x64x64 voxel grid; n = voxels (sim scale), m = k-samples.
        vec![InputSpec::new("64x64x64 matrix", 8192, 512, 0, 188_000.0)]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let (nx, nk) = (input.n, input.m);
        let kx = f32_vec(nk, -0.5, 0.5, input.seed);
        let ky = f32_vec(nk, -0.5, 0.5, input.seed + 1);
        let kz = f32_vec(nk, -0.5, 0.5, input.seed + 2);
        let mag = f32_vec(nk, 0.0, 1.0, input.seed + 3);
        let x = f32_vec(nx, -0.5, 0.5, input.seed + 4);
        let y = f32_vec(nx, -0.5, 0.5, input.seed + 5);
        let z = f32_vec(nx, -0.5, 0.5, input.seed + 6);
        let k = QKernel {
            kx: dev.alloc_from(&kx),
            ky: dev.alloc_from(&ky),
            kz: dev.alloc_from(&kz),
            phi_mag: dev.alloc_from(&mag),
            x: dev.alloc_from(&x),
            y: dev.alloc_from(&y),
            z: dev.alloc_from(&z),
            qr: dev.alloc::<f32>(nx),
            qi: dev.alloc::<f32>(nx),
            num_k: nk,
            num_x: nx,
        };
        dev.launch_with(
            &k,
            (nx as u32).div_ceil(BLOCK),
            BLOCK,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        let got_r = dev.read(&k.qr);
        let got_i = dev.read(&k.qi);
        let (er, ei) = host_q(&kx, &ky, &kz, &mag, &x, &y, &z);
        for i in (0..nx).step_by(97) {
            assert!((got_r[i] - er[i]).abs() < 1e-2 * er[i].abs().max(1.0));
            assert!((got_i[i] - ei[i]).abs() < 1e-2 * ei[i].abs().max(1.0));
        }
        RunOutput {
            checksum: got_r.iter().map(|&v| v.abs() as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn mriq_matches_host() {
        Mriq.run(&mut device(), &InputSpec::new("t", 512, 64, 0, 1.0));
    }

    #[test]
    fn mriq_is_sfu_heavy_compute_bound() {
        let mut dev = device();
        Mriq.run(&mut dev, &InputSpec::new("t", 512, 64, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.compute_intensity() > 20.0, "{}", c.compute_intensity());
        assert!(c.lane_ops[5] > 0.0, "no SFU ops recorded");
    }
}
