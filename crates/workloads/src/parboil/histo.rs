//! HISTO — Parboil saturating histogram: a 2-D histogram whose bins
//! saturate at 255. The input distribution is heavily skewed (as in the
//! paper's image input), so some bins suffer massive atomic contention —
//! the defining cost of this benchmark.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::rng;
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, Span};
use rand::Rng;

const BLOCK: u32 = 256;
const SAT: u32 = 255;

struct HistoKernel {
    data: DevBuffer<u32>,
    bins: DevBuffer<u32>,
    n: usize,
}

impl Kernel for HistoKernel {
    fn name(&self) -> &'static str {
        "histo_main"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let dim = block_threads as u64;
        Some(KernelFootprint::per_block(
            grid,
            4.0 * dim as f64,
            |b, fp| {
                fp.read(&k.data, Span::range(b as u64 * dim, dim));
                // The saturation CAS loop plainly reads any bin before updating
                // it atomically — data-dependent, so the whole histogram.
                fp.read_all(&k.bins);
                fp.atomic_all(&k.bins);
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n {
                return;
            }
            let bin = t.ld(&k.data, i) as usize;
            // Saturating increment via a CAS loop, as the real code does.
            loop {
                let cur = t.ld(&k.bins, bin);
                t.int_op(2);
                if cur >= SAT {
                    break;
                }
                if t.atomic_cas_u32(&k.bins, bin, cur, cur + 1) == cur {
                    break;
                }
            }
        });
    }
}

/// Skewed (image-like) bin stream: a Gaussian-ish blob over a 2-D
/// histogram, plus uniform background.
pub fn skewed_stream(n: usize, num_bins: usize, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            if r.gen::<f32>() < 0.6 {
                // Hot region: 1/64th of the bins get most of the traffic.
                r.gen_range(0..num_bins.div_ceil(64)) as u32
            } else {
                r.gen_range(0..num_bins) as u32
            }
        })
        .collect()
}

/// Host reference saturating histogram.
pub fn host_histo(data: &[u32], num_bins: usize) -> Vec<u32> {
    let mut bins = vec![0u32; num_bins];
    for &d in data {
        let b = &mut bins[d as usize];
        if *b < SAT {
            *b += 1;
        }
    }
    bins
}

/// The HISTO benchmark.
pub struct Histo;

impl Benchmark for Histo {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "histo",
            name: "HISTO",
            suite: Suite::Parboil,
            kernels: 4,
            regular: true,
            description: "2-D saturating histogram (max bin count 255)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: image input, "20-4" parameters; n = stream, m = bins.
        vec![InputSpec::new("image 20-4", 1 << 16, 4096, 0, 284_000.0)]
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // The saturating histogram reads a bin plainly to test the 255 cap
        // before incrementing it atomically — Parboil's own design; a
        // stale read can at worst skip one saturated increment.
        &["race-global:histo_main", "uninit-read:histo_main"]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let data = skewed_stream(input.n, input.m, input.seed);
        let k = HistoKernel {
            data: dev.alloc_from(&data),
            // The saturation check reads every bin before its first
            // increment: bins must start as an explicit zero.
            bins: dev.alloc_init::<u32>(input.m, 0),
            n: input.n,
        };
        dev.launch_with(
            &k,
            (input.n as u32).div_ceil(BLOCK),
            BLOCK,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        let got = dev.read(&k.bins);
        let expect = host_histo(&data, input.m);
        assert_eq!(got, expect, "histogram mismatch");
        RunOutput {
            checksum: got.iter().map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn histo_matches_host() {
        Histo.run(&mut device(), &InputSpec::new("t", 4096, 256, 0, 1.0));
    }

    #[test]
    fn hot_bins_saturate() {
        let data = skewed_stream(1 << 15, 256, 3);
        let bins = host_histo(&data, 256);
        assert!(bins.contains(&SAT), "nothing saturated");
        assert!(bins.iter().all(|&b| b <= SAT));
    }

    #[test]
    fn histo_has_heavy_atomic_traffic() {
        let mut dev = device();
        Histo.run(&mut dev, &InputSpec::new("t", 4096, 256, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.atomics > 0.5 * 4096.0, "atomics {}", c.atomics);
    }
}
