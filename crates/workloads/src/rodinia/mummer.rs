//! MUM — Rodinia MUMmerGPU: aligning query reads against a reference
//! sequence. The original walks a suffix tree on the GPU; we use the
//! equivalent suffix-*array* formulation (binary search for the longest
//! prefix match), which preserves the benchmark's essence: per-query
//! data-dependent loop counts and pointer-chasing-style uncoalesced loads
//! through a big index structure (substitution recorded in DESIGN.md).

use crate::bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
use crate::inputs::sequences::{queries, reference};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 128;

struct MatchKernel {
    reference: DevBuffer<u32>,
    suffix_array: DevBuffer<u32>,
    queries: DevBuffer<u32>,
    match_len: DevBuffer<u32>,
    ref_len: usize,
    query_len: usize,
    num_queries: usize,
}

impl Kernel for MatchKernel {
    fn name(&self) -> &'static str {
        "mummer_match"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let q = t.gtid() as usize;
            if q >= k.num_queries {
                return;
            }
            let qbase = q * k.query_len;
            // Binary search the suffix array for the query's longest
            // prefix match.
            let mut lo = 0usize;
            let mut hi = k.ref_len;
            let mut best = 0u32;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let suf = t.ld(&k.suffix_array, mid) as usize;
                // Compare query against reference[suf..].
                let mut l = 0usize;
                let mut cmp = std::cmp::Ordering::Equal;
                while l < k.query_len && suf + l < k.ref_len {
                    let qc = t.ld(&k.queries, qbase + l);
                    let rc = t.ld(&k.reference, suf + l);
                    t.int_op(3);
                    match qc.cmp(&rc) {
                        std::cmp::Ordering::Equal => l += 1,
                        o => {
                            cmp = o;
                            break;
                        }
                    }
                }
                best = best.max(l as u32);
                t.int_op(4);
                match cmp {
                    std::cmp::Ordering::Less => hi = mid,
                    _ => lo = mid + 1,
                }
            }
            // The longest match sits adjacent to the insertion point; the
            // search path may have skipped one of the two neighbors.
            for cand in [lo.wrapping_sub(1), lo] {
                if cand >= k.ref_len {
                    continue;
                }
                let suf = t.ld(&k.suffix_array, cand) as usize;
                let mut l = 0usize;
                while l < k.query_len && suf + l < k.ref_len {
                    let qc = t.ld(&k.queries, qbase + l);
                    let rc = t.ld(&k.reference, suf + l);
                    t.int_op(3);
                    if qc != rc {
                        break;
                    }
                    l += 1;
                }
                best = best.max(l as u32);
            }
            t.st(&k.match_len, q, best);
        });
    }
}

/// Host reference: longest prefix of `query` occurring in `reference`.
pub fn host_longest_match(reference: &[u8], query: &[u8]) -> u32 {
    let mut best = 0;
    for start in 0..reference.len() {
        let mut l = 0;
        while l < query.len() && start + l < reference.len() && reference[start + l] == query[l] {
            l += 1;
        }
        best = best.max(l);
    }
    best as u32
}

/// The MUM benchmark.
pub struct Mummer;

impl Benchmark for Mummer {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "mum",
            name: "MUM",
            suite: Suite::Rodinia,
            kernels: 3,
            regular: false,
            description: "Sequence alignment against an indexed reference (MUMmerGPU)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 100bp and 25bp reads. n = queries, m = read length.
        vec![
            InputSpec::new("100bp", 2048, 100, 0, 18_000.0),
            InputSpec::new("25bp", 4096, 25, 0, 21_000.0),
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let ref_len = 16 * 1024;
        let reference_seq = reference(ref_len, input.seed);
        let qs = queries(&reference_seq, input.n, input.m, input.seed + 1);
        // Suffix array of the reference.
        let mut sa: Vec<u32> = (0..ref_len as u32).collect();
        sa.sort_by(|&a, &b| reference_seq[a as usize..].cmp(&reference_seq[b as usize..]));
        let k = MatchKernel {
            reference: dev.alloc_from(&reference_seq.iter().map(|&c| c as u32).collect::<Vec<_>>()),
            suffix_array: dev.alloc_from(&sa),
            queries: dev.alloc_from(&qs.iter().map(|&c| c as u32).collect::<Vec<_>>()),
            match_len: dev.alloc::<u32>(input.n),
            ref_len,
            query_len: input.m,
            num_queries: input.n,
        };
        dev.launch_with(
            &k,
            (input.n as u32).div_ceil(BLOCK),
            BLOCK,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        let got = dev.read(&k.match_len);
        // Spot-check against the (quadratic) host reference.
        for q in (0..input.n).step_by(211) {
            let expect = host_longest_match(&reference_seq, &qs[q * input.m..(q + 1) * input.m]);
            assert_eq!(got[q], expect, "match length mismatch for query {q}");
        }
        // Most mutated-substring queries should match most of their length.
        let long_matches = got.iter().filter(|&&l| l as usize > input.m / 2).count();
        assert!(long_matches > input.n / 4, "{long_matches} long matches");
        RunOutput {
            checksum: got.iter().map(|&v| v as f64).sum(),
            items: Some(ItemCounts {
                vertices: input.n as u64,
                edges: (input.n * input.m) as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn mum_matches_host() {
        Mummer.run(&mut device(), &InputSpec::new("t", 256, 25, 0, 1.0));
    }

    #[test]
    fn host_longest_match_basics() {
        let r = b"ACGTACGT".to_vec();
        assert_eq!(host_longest_match(&r, b"CGTA"), 4);
        assert_eq!(host_longest_match(&r, b"TTTT"), 1);
        assert_eq!(host_longest_match(&r, b""), 0);
    }

    #[test]
    fn mum_is_divergent() {
        let mut dev = device();
        Mummer.run(&mut dev, &InputSpec::new("t", 256, 25, 0, 1.0));
        // Data-dependent binary-search/compare loops diverge.
        assert!(dev.total_counters().divergence() > 0.15);
    }
}
