//! PF — Rodinia PathFinder: dynamic programming over a 2-D grid, one row
//! per step; each cell takes the minimum of the three neighbors above and
//! adds its own weight. Rows are processed in a pyramid of halo-padded
//! shared-memory tiles.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::u32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 256;

struct PfRow {
    wall: DevBuffer<u32>,
    src: DevBuffer<u32>,
    dst: DevBuffer<u32>,
    cols: usize,
    row: usize,
}

impl Kernel for PfRow {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.wall)
            .buf(&self.src)
            .buf(&self.dst)
            .u(self.cols as u64)
            .u(self.row as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "pathfinder_dynproc"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let dim = block_threads as u64;
        // Per thread: 4 int ops in the DP step.
        Some(KernelFootprint::per_block(
            grid,
            4.0 * dim as f64,
            |b, fp| {
                let base = b as u64 * dim;
                // Tile plus one halo cell on each side (src is read-only this
                // launch — the ping-pong partner is the write target).
                let lo = base.saturating_sub(1);
                fp.read(&k.src, Span::range(lo, base + dim + 1 - lo));
                fp.read(
                    &k.wall,
                    Span::range(k.row as u64 * k.cols as u64 + base, dim),
                );
                fp.write(&k.dst, Span::range(base, dim));
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let dim = blk.block_dim() as usize;
        let sh = blk.shared_alloc::<u32>(dim + 2);
        let base = blk.block_idx() as usize * dim;
        blk.for_each_thread(|t| {
            let c = base + t.tid() as usize;
            let ti = t.tid() as usize + 1;
            if c < k.cols {
                let v = t.ld(&k.src, c);
                t.sst(&sh, ti, v);
            }
            // Halo cells.
            if t.tid() == 0 {
                let v = if base > 0 {
                    t.ld(&k.src, base - 1)
                } else {
                    u32::MAX / 2
                };
                t.sst(&sh, 0, v);
            }
            if t.tid() as usize == dim - 1 {
                let v = if base + dim < k.cols {
                    t.ld(&k.src, base + dim)
                } else {
                    u32::MAX / 2
                };
                t.sst(&sh, dim + 1, v);
            }
        });
        blk.for_each_thread(|t| {
            let c = base + t.tid() as usize;
            if c >= k.cols {
                return;
            }
            let ti = t.tid() as usize + 1;
            let left = t.sld(&sh, ti - 1);
            let mid = t.sld(&sh, ti);
            let right = t.sld(&sh, ti + 1);
            let w = t.ld(&k.wall, k.row * k.cols + c);
            t.int_op(4);
            t.st(&k.dst, c, w + left.min(mid).min(right));
        });
    }
}

/// Host reference DP.
pub fn host_pathfinder(wall: &[u32], rows: usize, cols: usize) -> Vec<u32> {
    let mut cur: Vec<u32> = wall[..cols].to_vec();
    for r in 1..rows {
        let mut next = vec![0u32; cols];
        for c in 0..cols {
            let mut best = cur[c];
            if c > 0 {
                best = best.min(cur[c - 1]);
            }
            if c + 1 < cols {
                best = best.min(cur[c + 1]);
            }
            next[c] = wall[r * cols + c] + best;
        }
        cur = next;
    }
    cur
}

/// The PF benchmark.
pub struct Pathfinder;

impl Benchmark for Pathfinder {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "pf",
            name: "PF",
            suite: Suite::Rodinia,
            kernels: 1,
            regular: true,
            description: "Grid dynamic programming (minimum-weight path)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: rows-cols-pyramid 100k-100-20 and 200k-200-40.
        vec![
            InputSpec::new("100k-100-20", 4096, 24, 0, 1_700_000.0),
            InputSpec::new("200k-200-40", 8192, 24, 0, 858_000.0),
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let (cols, rows) = (input.n, input.m);
        let wall = u32_vec(rows * cols, 10, input.seed);
        let k = PfRow {
            wall: dev.alloc_from(&wall),
            src: dev.alloc_from(&wall[..cols]),
            dst: dev.alloc::<u32>(cols),
            cols,
            row: 0,
        };
        let grid = (cols as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        let mut bufs = [k.src, k.dst];
        for row in 1..rows {
            dev.launch_with(
                &PfRow {
                    src: bufs[0],
                    dst: bufs[1],
                    row,
                    ..k
                },
                grid,
                BLOCK,
                opts,
            );
            bufs.swap(0, 1);
        }
        let got = dev.read(&bufs[0]);
        assert_eq!(got, host_pathfinder(&wall, rows, cols), "PF mismatch");
        RunOutput {
            checksum: got.iter().map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn pf_matches_host() {
        Pathfinder.run(&mut device(), &InputSpec::new("t", 512, 8, 0, 1.0));
    }

    #[test]
    fn host_pathfinder_takes_min_route() {
        // 2 rows, 3 cols: second row adds min of neighbors above.
        let wall = vec![5, 1, 5, 1, 1, 1];
        assert_eq!(host_pathfinder(&wall, 2, 3), vec![2, 2, 2]);
    }

    #[test]
    fn pf_uses_shared_halo() {
        let mut dev = device();
        Pathfinder.run(&mut dev, &InputSpec::new("t", 512, 4, 0, 1.0));
        assert!(dev.total_counters().shared_accesses > 0.0);
    }
}
