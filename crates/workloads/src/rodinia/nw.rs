//! NW — Rodinia Needleman-Wunsch global DNA sequence alignment: dynamic
//! programming over the score matrix in anti-diagonal waves of 16x16
//! shared-memory tiles. Integer DP with data staging — memory-bound with
//! modest parallelism early and late in the wave.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::sequences::reference;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, KernelResources, LaunchOpts, ParamKey,
    Span,
};

const TILE: usize = 16;
const GAP: i32 = -1;

struct NwTileWave {
    score: DevBuffer<i32>,
    seq_a: DevBuffer<u32>,
    seq_b: DevBuffer<u32>,
    n: usize, // matrix is (n+1) x (n+1)
    wave: usize,
}

fn sub_score(a: u32, b: u32) -> i32 {
    if a == b {
        2
    } else {
        -1
    }
}

impl Kernel for NwTileWave {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.score)
            .buf(&self.seq_a)
            .buf(&self.seq_b)
            .u(self.n as u64)
            .u(self.wave as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "nw_tile_wave"
    }
    fn resources(&self) -> KernelResources {
        KernelResources {
            regs_per_thread: 24,
            shared_bytes: ((TILE + 1) * (TILE + 1) * 4) as u32,
        }
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let tiles = k.n / TILE;
        let t = TILE as u64;
        let pitch = k.n as u64 + 1;
        let ops = (TILE * TILE * 6) as f64;
        Some(KernelFootprint::per_block(grid, ops, |b, fp| {
            // Mirror run_block's wave -> (ti, tj) tile mapping.
            let ti = if k.wave < tiles {
                b as usize
            } else {
                k.wave - tiles + 1 + b as usize
            };
            let tj = k.wave - ti;
            if ti >= tiles || tj >= tiles {
                return;
            }
            let (row0, col0) = (ti as u64 * t, tj as u64 * t);
            // Halo: the tile's top row and left column (written by the
            // previous waves' launches, never by tiles of this wave).
            fp.read(&k.score, Span::range(row0 * pitch + col0, t + 1));
            fp.read(&k.score, Span::strided(row0 * pitch + col0, t + 1, pitch));
            fp.read(&k.seq_a, Span::range(row0, t));
            fp.read(&k.seq_b, Span::range(col0, t));
            // Interior write-back, one run per tile row.
            for i in 0..t {
                fp.write(&k.score, Span::range((row0 + i + 1) * pitch + col0 + 1, t));
            }
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let tiles = k.n / TILE;
        // Tiles on anti-diagonal `wave`: (ti, tj) with ti + tj == wave.
        let b = blk.block_idx() as usize;
        let ti = if k.wave < tiles {
            b
        } else {
            k.wave - tiles + 1 + b
        };
        let tj = k.wave - ti;
        if ti >= tiles || tj >= tiles {
            return;
        }
        let sh = blk.shared_alloc::<i32>((TILE + 1) * (TILE + 1));
        let row0 = ti * TILE;
        let col0 = tj * TILE;
        let pitch = k.n + 1;
        // Stage the halo (top row and left column of the tile).
        blk.for_each_thread(|t| {
            let i = t.tid() as usize;
            if i <= TILE {
                let v = t.ld(&k.score, row0 * pitch + col0 + i);
                t.sst(&sh, i, v);
                let w = t.ld(&k.score, (row0 + i) * pitch + col0);
                t.sst(&sh, i * (TILE + 1), w);
            }
        });
        // Sweep the tile's own anti-diagonals in shared memory.
        for d in 0..2 * TILE - 1 {
            blk.for_each_thread(|t| {
                let i = t.tid() as usize; // row within tile, 0-based
                if i >= TILE {
                    return;
                }
                let j = d as i64 - i as i64;
                if !(0..TILE as i64).contains(&j) {
                    return;
                }
                let j = j as usize;
                let a = t.ld(&k.seq_a, row0 + i);
                let bch = t.ld(&k.seq_b, col0 + j);
                let diag = t.sld(&sh, i * (TILE + 1) + j);
                let up = t.sld(&sh, i * (TILE + 1) + j + 1);
                let left = t.sld(&sh, (i + 1) * (TILE + 1) + j);
                t.int_op(6);
                let best = (diag + sub_score(a, bch)).max(up + GAP).max(left + GAP);
                t.sst(&sh, (i + 1) * (TILE + 1) + j + 1, best);
            });
        }
        // Write the tile back.
        blk.for_each_thread(|t| {
            let i = t.tid() as usize;
            if i >= TILE {
                return;
            }
            for j in 0..TILE {
                let v = t.shared_get(&sh, (i + 1) * (TILE + 1) + j + 1);
                t.smem(1);
                t.st(&k.score, (row0 + i + 1) * pitch + col0 + j + 1, v);
            }
        });
    }
}

/// Host reference NW score matrix (returns the final alignment score).
pub fn host_nw(a: &[u32], b: &[u32]) -> i32 {
    let n = a.len();
    let mut dp = vec![0i32; (n + 1) * (n + 1)];
    let pitch = n + 1;
    for i in 0..=n {
        dp[i * pitch] = GAP * i as i32;
        dp[i] = GAP * i as i32;
    }
    for i in 1..=n {
        for j in 1..=n {
            let d = dp[(i - 1) * pitch + j - 1] + sub_score(a[i - 1], b[j - 1]);
            let u = dp[(i - 1) * pitch + j] + GAP;
            let l = dp[i * pitch + j - 1] + GAP;
            dp[i * pitch + j] = d.max(u).max(l);
        }
    }
    dp[n * pitch + n]
}

/// The NW benchmark.
pub struct NeedlemanWunsch;

impl Benchmark for NeedlemanWunsch {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "nw",
            name: "NW",
            suite: Suite::Rodinia,
            kernels: 2,
            regular: true,
            description: "Needleman-Wunsch DNA alignment (wavefront DP)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 4096 and 16384 items.
        vec![
            InputSpec::new("4096 items", 256, 0, 0, 17_000.0),
            InputSpec::new("16384 items", 512, 0, 0, 8_400.0),
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        assert!(n.is_multiple_of(TILE));
        let a: Vec<u32> = reference(n, input.seed).iter().map(|&c| c as u32).collect();
        let b: Vec<u32> = reference(n, input.seed + 1)
            .iter()
            .map(|&c| c as u32)
            .collect();
        let pitch = n + 1;
        let mut init = vec![0i32; pitch * pitch];
        for i in 0..=n {
            init[i * pitch] = GAP * i as i32;
            init[i] = GAP * i as i32;
        }
        let k = NwTileWave {
            score: dev.alloc_from(&init),
            seq_a: dev.alloc_from(&a),
            seq_b: dev.alloc_from(&b),
            n,
            wave: 0,
        };
        let tiles = n / TILE;
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        // TILE+1 threads: the halo staging phase needs one thread per halo
        // entry (top row and left column are TILE+1 long); with only TILE
        // threads the corner entries were never staged and silently read as
        // shared-memory zero-init, which corrupts the DP at full scale.
        for wave in 0..2 * tiles - 1 {
            let width = if wave < tiles {
                wave + 1
            } else {
                2 * tiles - 1 - wave
            } as u32;
            dev.launch_with(&NwTileWave { wave, ..k }, width, TILE as u32 + 1, opts);
        }
        let score = dev.read_at(&k.score, pitch * pitch - 1);
        let expect = host_nw(&a, &b);
        assert_eq!(score, expect, "NW score mismatch");
        RunOutput {
            checksum: score as f64,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn nw_matches_host() {
        NeedlemanWunsch.run(&mut device(), &InputSpec::new("t", 64, 0, 0, 1.0));
    }

    #[test]
    fn identical_sequences_score_2n() {
        let a: Vec<u32> = vec![65, 67, 71, 84, 65, 65];
        assert_eq!(host_nw(&a, &a), 12);
    }

    #[test]
    fn nw_wave_parallelism_varies() {
        let mut dev = device();
        NeedlemanWunsch.run(&mut dev, &InputSpec::new("t", 64, 0, 0, 1.0));
        let grids: Vec<u32> = dev.stats().iter().map(|l| l.grid).collect();
        assert_eq!(*grids.iter().max().unwrap(), 4);
        assert_eq!(grids[0], 1);
        assert_eq!(*grids.last().unwrap(), 1);
    }
}
