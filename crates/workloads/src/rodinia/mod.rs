//! Rodinia: heterogeneous-computing benchmarks (UVA). The suite whose
//! memory-bound members (and only those) slow down drastically under ECC
//! in the paper's Figure 4.

pub mod backprop;
pub mod bfs;
pub mod gaussian;
pub mod mummer;
pub mod nn;
pub mod nw;
pub mod pathfinder;

pub use backprop::BackProp;
pub use bfs::RBfs;
pub use gaussian::Gaussian;
pub use mummer::Mummer;
pub use nn::NearestNeighbor;
pub use nw::NeedlemanWunsch;
pub use pathfinder::Pathfinder;
