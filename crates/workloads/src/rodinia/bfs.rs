//! R-BFS — Rodinia breadth-first search: the classic two-kernel
//! frontier-mask formulation (no queues, no atomics): kernel 1 expands
//! every node whose frontier flag is set, writing an "updating" mask;
//! kernel 2 promotes the updating mask into the next frontier. Every pass
//! scans all n nodes — cheap per pass, diameter-many passes.

use crate::bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
use crate::inputs::graphs::{host_bfs, random_kway};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 256;
const INF: u32 = u32::MAX;

struct Bufs {
    row_ptr: DevBuffer<u32>,
    col: DevBuffer<u32>,
    cost: DevBuffer<u32>,
    mask: DevBuffer<u32>,
    updating: DevBuffer<u32>,
    visited: DevBuffer<u32>,
    changed: DevBuffer<u32>,
    n: usize,
}

struct Kernel1<'a> {
    b: &'a Bufs,
}
impl Kernel for Kernel1<'_> {
    fn name(&self) -> &'static str {
        "rbfs_kernel1"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= b.n || t.ld(&b.mask, v) == 0 {
                return;
            }
            t.st(&b.mask, v, 0);
            let cv = t.ld(&b.cost, v);
            let lo = t.ld(&b.row_ptr, v) as usize;
            let hi = t.ld(&b.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&b.col, e) as usize;
                t.int_op(2);
                if t.ld(&b.visited, w) == 0 {
                    t.st(&b.cost, w, cv + 1);
                    t.st(&b.updating, w, 1);
                }
            }
        });
    }
}

struct Kernel2<'a> {
    b: &'a Bufs,
}
impl Kernel for Kernel2<'_> {
    fn name(&self) -> &'static str {
        "rbfs_kernel2"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= b.n || t.ld(&b.updating, v) == 0 {
                return;
            }
            t.st(&b.mask, v, 1);
            t.st(&b.visited, v, 1);
            t.st(&b.updating, v, 0);
            t.st(&b.changed, 0, 1);
        });
    }
}

/// The R-BFS benchmark.
pub struct RBfs;

impl Benchmark for RBfs {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "rbfs",
            name: "R-BFS",
            suite: Suite::Rodinia,
            kernels: 2,
            regular: false,
            description: "Frontier-mask breadth-first search",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: random graphs with 100k and 1m nodes (k ~ 4).
        vec![
            InputSpec::new("100k nodes", 8192, 4, 0, 169_000.0),
            InputSpec::new("1m nodes", 16384, 4, 0, 86_000.0),
        ]
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // Rodinia BFS lets every discoverer of a node write its cost and
        // updating flag — multi-writer by design, benign because all
        // writers store the same value in a given pass.
        &["race-global:rbfs_kernel1", "race-global:rbfs_kernel2"]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let g = random_kway(input.n, input.m, input.seed);
        let src = 0usize;
        let b = Bufs {
            row_ptr: dev.alloc_from(&g.row_ptr),
            col: dev.alloc_from(&g.col),
            cost: dev.alloc_init(g.n, INF),
            // The kernels read these for every node; the reference code
            // cudaMemsets them to zero rather than relying on fresh
            // allocations reading as zero.
            mask: dev.alloc_init::<u32>(g.n, 0),
            updating: dev.alloc_init::<u32>(g.n, 0),
            visited: dev.alloc_init::<u32>(g.n, 0),
            changed: dev.alloc::<u32>(1),
            n: g.n,
        };
        dev.write_at(&b.cost, src, 0);
        dev.write_at(&b.mask, src, 1);
        dev.write_at(&b.visited, src, 1);
        let grid = (g.n as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        loop {
            dev.fill(&b.changed, 0);
            dev.launch_with(&Kernel1 { b: &b }, grid, BLOCK, opts);
            dev.launch_with(&Kernel2 { b: &b }, grid, BLOCK, opts);
            if dev.read_at(&b.changed, 0) == 0 {
                break;
            }
        }
        let got = dev.read(&b.cost);
        assert_eq!(got, host_bfs(&g, src), "R-BFS cost mismatch");
        RunOutput {
            checksum: got.iter().filter(|&&c| c != INF).count() as f64,
            items: Some(ItemCounts {
                vertices: if input.name.starts_with("100k") {
                    100_000
                } else {
                    1_000_000
                },
                edges: if input.name.starts_with("100k") {
                    400_000
                } else {
                    4_000_000
                },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn rbfs_matches_host() {
        RBfs.run(&mut device(), &InputSpec::new("t", 2048, 4, 0, 1.0));
    }

    #[test]
    fn rbfs_needs_few_passes_on_random_graph() {
        let mut dev = device();
        RBfs.run(&mut dev, &InputSpec::new("t", 2048, 4, 0, 1.0));
        // Random graphs have logarithmic diameter.
        assert!(dev.stats().len() < 30, "launches {}", dev.stats().len());
    }

    #[test]
    fn rbfs_uses_no_atomics() {
        let mut dev = device();
        RBfs.run(&mut dev, &InputSpec::new("t", 1024, 4, 0, 1.0));
        assert_eq!(dev.total_counters().atomics, 0.0);
    }
}
