//! BP — Rodinia back-propagation: training the weights of a two-layer
//! neural network. Kernel 1 computes the hidden-layer activations (a
//! matrix-vector product with block-level shared-memory reduction);
//! kernel 2 adjusts the input-to-hidden weights from the propagated
//! deltas. Memory-bound on the weight matrix.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::f32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const HID: usize = 16;
const BLOCK: u32 = 256;

struct LayerForward {
    input: DevBuffer<f32>,
    weights: DevBuffer<f32>, // [n_in x HID]
    partial: DevBuffer<f32>, // [num_blocks x HID]
    n_in: usize,
}

impl Kernel for LayerForward {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.input)
            .buf(&self.weights)
            .buf(&self.partial)
            .u(self.n_in as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "bpnn_layerforward"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let dim = block_threads as u64;
        let h = HID as u64;
        // Per output unit: one fma per element plus the tree reduction.
        let ops = (h * 2 * dim) as f64;
        Some(KernelFootprint::per_block(grid, ops, |b, fp| {
            let base = b as u64 * dim;
            fp.read(&k.input, Span::range(base, dim));
            // i*HID + h over the block's i-range and all h: contiguous.
            fp.read(&k.weights, Span::range(base * h, dim * h));
            fp.write(&k.partial, Span::range(b as u64 * h, h));
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let dim = blk.block_dim() as usize;
        let sh = blk.shared_alloc::<f32>(dim);
        let bidx = blk.block_idx() as usize;
        for h in 0..HID {
            blk.for_each_thread(|t| {
                let i = t.gtid() as usize;
                let v = if i < k.n_in {
                    let x = t.ld(&k.input, i);
                    let w = t.ld(&k.weights, i * HID + h);
                    t.fma32(1);
                    x * w
                } else {
                    0.0
                };
                t.sst(&sh, t.tid() as usize, v);
            });
            let mut stride = dim / 2;
            while stride > 0 {
                blk.for_each_thread(|t| {
                    let i = t.tid() as usize;
                    if i < stride {
                        let a = t.sld(&sh, i);
                        let b = t.sld(&sh, i + stride);
                        t.fp32_add(1);
                        t.sst(&sh, i, a + b);
                    }
                });
                stride /= 2;
            }
            blk.for_each_thread(|t| {
                if t.tid() == 0 {
                    let v = t.sld(&sh, 0);
                    t.st(&k.partial, bidx * HID + h, v);
                }
            });
        }
    }
}

struct AdjustWeights {
    input: DevBuffer<f32>,
    weights: DevBuffer<f32>,
    delta: DevBuffer<f32>, // [HID]
    n_in: usize,
    eta: f32,
    momentum: f32,
}

impl Kernel for AdjustWeights {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.input)
            .buf(&self.weights)
            .buf(&self.delta)
            .u(self.n_in as u64)
            .f(self.eta)
            .f(self.momentum)
            .done()
    }

    fn name(&self) -> &'static str {
        "bpnn_adjust_weights"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let dim = block_threads as u64;
        let h = HID as u64;
        let ops = (dim * h * 3) as f64;
        Some(KernelFootprint::per_block(grid, ops, |b, fp| {
            let base = b as u64 * dim;
            fp.read(&k.input, Span::range(base, dim));
            fp.read_all(&k.delta);
            // Each block reads and rewrites only its own weight rows.
            fp.read(&k.weights, Span::range(base * h, dim * h));
            fp.write(&k.weights, Span::range(base * h, dim * h));
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n_in {
                return;
            }
            let x = t.ld(&k.input, i);
            for h in 0..HID {
                let d = t.ld(&k.delta, h);
                let w = t.ld(&k.weights, i * HID + h);
                t.fma32(3);
                t.st(
                    &k.weights,
                    i * HID + h,
                    w + k.eta * d * x + k.momentum * w * 1e-4,
                );
            }
        });
    }
}

/// Host references.
pub fn host_forward(input: &[f32], weights: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; HID];
    for h in 0..HID {
        // Match the device's pairwise-reduction order per 256-element block
        // closely enough for f32: accumulate per block, then sum.
        for (i, &x) in input.iter().enumerate() {
            out[h] += x * weights[i * HID + h];
        }
    }
    out
}

/// The BP benchmark.
pub struct BackProp;

impl Benchmark for BackProp {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "bp",
            name: "BP",
            suite: Suite::Rodinia,
            kernels: 2,
            regular: true,
            description: "Back-propagation training of a layered neural network",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 2^17 input units.
        vec![InputSpec::new("2^17 elements", 1 << 13, 0, 0, 80_000.0)]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        let x = f32_vec(n, 0.0, 1.0, input.seed);
        let w = f32_vec(n * HID, -0.5, 0.5, input.seed + 1);
        let k1 = LayerForward {
            input: dev.alloc_from(&x),
            weights: dev.alloc_from(&w),
            partial: dev.alloc::<f32>(n.div_ceil(BLOCK as usize) * HID),
            n_in: n,
        };
        let grid = (n as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        dev.launch_with(&k1, grid, BLOCK, opts);
        // Host folds the partial sums (as Rodinia does) and computes deltas.
        let partial = dev.read(&k1.partial);
        let mut hidden = [0.0f32; HID];
        for b in 0..grid as usize {
            for h in 0..HID {
                hidden[h] += partial[b * HID + h];
            }
        }
        let expect = host_forward(&x, &w);
        for h in 0..HID {
            assert!(
                (hidden[h] - expect[h]).abs() < 2e-2 * expect[h].abs().max(1.0),
                "hidden[{h}]: {} vs {}",
                hidden[h],
                expect[h]
            );
        }
        let delta: Vec<f32> = hidden
            .iter()
            .map(|v| (1.0 - v.tanh().powi(2)) * 0.1)
            .collect();
        let k2 = AdjustWeights {
            input: k1.input,
            weights: k1.weights,
            delta: dev.alloc_from(&delta),
            n_in: n,
            eta: 0.3,
            momentum: 0.3,
        };
        dev.launch_with(&k2, grid, BLOCK, opts);
        let new_w = dev.read(&k2.weights);
        assert!(new_w.iter().all(|v| v.is_finite()));
        // Weights must actually have moved.
        let moved = new_w
            .iter()
            .zip(&w)
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(moved > n / 2, "only {moved} weights updated");
        RunOutput {
            checksum: hidden.iter().map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn bp_matches_host_forward() {
        BackProp.run(&mut device(), &InputSpec::new("t", 1024, 0, 0, 1.0));
    }

    #[test]
    fn bp_is_memory_bound() {
        let mut dev = device();
        BackProp.run(&mut dev, &InputSpec::new("t", 2048, 0, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.compute_intensity() < 4.0, "{}", c.compute_intensity());
    }
}
