//! GE — Rodinia Gaussian elimination: solves a dense linear system row by
//! row with the classic Fan1/Fan2 kernel pair per pivot. 2n kernel
//! launches with shrinking parallelism — low occupancy late in the solve.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::rng;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};
use rand::Rng;

const BLOCK: u32 = 256;

/// Fan1: compute the multiplier column for pivot `p`.
struct Fan1 {
    a: DevBuffer<f32>,
    mult: DevBuffer<f32>,
    n: usize,
    p: usize,
}
impl Kernel for Fan1 {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.a)
            .buf(&self.mult)
            .u(self.n as u64)
            .u(self.p as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "gaussian_fan1"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let (n, p) = (k.n as u64, k.p as u64);
        Some(KernelFootprint::per_block(
            grid,
            block_threads as f64,
            |b, fp| {
                // Thread g handles row r = g + p + 1 (when r < n).
                let r0 = b as u64 * block_threads as u64 + p + 1;
                if r0 >= n {
                    return;
                }
                let rows = (n - r0).min(block_threads as u64);
                fp.read(&k.a, Span::point(p * n + p));
                fp.read(&k.a, Span::strided(r0 * n + p, rows, n));
                fp.write(&k.mult, Span::range(r0, rows));
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let r = t.gtid() as usize + k.p + 1;
            if r >= k.n {
                return;
            }
            let pivot = t.ld(&k.a, k.p * k.n + k.p);
            let below = t.ld(&k.a, r * k.n + k.p);
            t.sfu(1);
            t.st(&k.mult, r, below / pivot);
        });
    }
}

/// Fan2: eliminate the column below the pivot across the trailing matrix
/// and the right-hand side.
struct Fan2 {
    a: DevBuffer<f32>,
    b: DevBuffer<f32>,
    mult: DevBuffer<f32>,
    n: usize,
    p: usize,
}
impl Kernel for Fan2 {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.a)
            .buf(&self.b)
            .buf(&self.mult)
            .u(self.n as u64)
            .u(self.p as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "gaussian_fan2"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let (n, p) = (k.n as u64, k.p as u64);
        let cols = n - p;
        let rows = n - p - 1;
        Some(KernelFootprint::per_block(
            grid,
            2.0 * block_threads as f64,
            |b, fp| {
                // Thread idx maps to (r, c) = (p + 1 + idx / cols, p + idx % cols)
                // over the trailing submatrix, row-major.
                let i0 = b as u64 * block_threads as u64;
                let i1 = (i0 + block_threads as u64).min(rows * cols);
                if i0 >= i1 {
                    return;
                }
                let (r0, r1) = (p + 1 + i0 / cols, p + 1 + (i1 - 1) / cols);
                fp.read(&k.mult, Span::range(r0, r1 - r0 + 1));
                fp.read(&k.a, Span::range(p * n + p, cols)); // pivot row
                                                             // The block's (r, c) cells, split into per-row runs of a.
                for r in r0..=r1 {
                    let lo = i0.max((r - p - 1) * cols);
                    let hi = i1.min((r - p) * cols);
                    let span = Span::range(r * n + p + (lo - (r - p - 1) * cols), hi - lo);
                    fp.read(&k.a, span);
                    fp.write(&k.a, span);
                }
                // One thread per row (idx a multiple of cols) updates the RHS.
                let m0 = i0.div_ceil(cols) * cols;
                if m0 < i1 {
                    let own = Span::range(p + 1 + m0 / cols, (i1 - m0).div_ceil(cols));
                    fp.read(&k.b, Span::point(p));
                    fp.read(&k.b, own);
                    fp.write(&k.b, own);
                }
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let cols = k.n - k.p;
        blk.for_each_thread(|t| {
            let idx = t.gtid() as usize;
            let rows = k.n - k.p - 1;
            if idx >= rows * cols {
                return;
            }
            let r = k.p + 1 + idx / cols;
            let c = k.p + idx % cols;
            let m = t.ld(&k.mult, r);
            let av = t.ld(&k.a, r * k.n + c);
            let pv = t.ld(&k.a, k.p * k.n + c);
            t.fma32(1);
            t.st(&k.a, r * k.n + c, av - m * pv);
            if c == k.p + idx % cols && idx.is_multiple_of(cols) {
                // One thread per row updates the RHS.
                let bv = t.ld(&k.b, r);
                let pb = t.ld(&k.b, k.p);
                t.fma32(1);
                t.st(&k.b, r, bv - m * pb);
            }
        });
    }
}

/// Host reference: solve by Gaussian elimination + back substitution.
pub fn host_solve(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    for p in 0..n - 1 {
        for r in p + 1..n {
            let m = a[r * n + p] / a[p * n + p];
            for c in p..n {
                a[r * n + c] -= m * a[p * n + c];
            }
            b[r] -= m * b[p];
        }
    }
    let mut x = vec![0.0f32; n];
    for r in (0..n).rev() {
        let mut s = b[r];
        for c in r + 1..n {
            s -= a[r * n + c] * x[c];
        }
        x[r] = s / a[r * n + r];
    }
    x
}

/// The GE benchmark.
pub struct Gaussian;

impl Benchmark for Gaussian {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "ge",
            name: "GE",
            suite: Suite::Rodinia,
            kernels: 2,
            regular: true,
            description: "Dense Gaussian elimination (Fan1/Fan2 per pivot)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 2048 x 2048 matrix.
        vec![InputSpec::new("2048 x 2048 matrix", 192, 0, 0, 20_000.0)]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        let mut r = rng(input.seed);
        // Diagonally dominant: stable without pivoting (as Rodinia assumes).
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j {
                    n as f32
                } else {
                    r.gen_range(-1.0..1.0)
                };
            }
        }
        let bvec: Vec<f32> = (0..n).map(|_| r.gen_range(-1.0..1.0)).collect();
        let da = dev.alloc_from(&a);
        let db = dev.alloc_from(&bvec);
        let dm = dev.alloc::<f32>(n);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        for p in 0..n - 1 {
            let rows = (n - p - 1) as u32;
            dev.launch_with(
                &Fan1 {
                    a: da,
                    mult: dm,
                    n,
                    p,
                },
                rows.div_ceil(BLOCK),
                BLOCK,
                opts,
            );
            let work = rows * (n - p) as u32;
            dev.launch_with(
                &Fan2 {
                    a: da,
                    b: db,
                    mult: dm,
                    n,
                    p,
                },
                work.div_ceil(BLOCK),
                BLOCK,
                opts,
            );
        }
        // Back substitution on the host (as Rodinia does).
        let ra = dev.read(&da);
        let rb = dev.read(&db);
        let mut x = vec![0.0f32; n];
        for row in (0..n).rev() {
            let mut s = rb[row];
            for c in row + 1..n {
                s -= ra[row * n + c] * x[c];
            }
            x[row] = s / ra[row * n + row];
        }
        // Validate against the original system: A x = b.
        for i in 0..n {
            let mut s = 0.0f32;
            for j in 0..n {
                s += a[i * n + j] * x[j];
            }
            assert!(
                (s - bvec[i]).abs() < 1e-2,
                "residual row {i}: {s} vs {}",
                bvec[i]
            );
        }
        RunOutput {
            checksum: x.iter().map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn ge_solves_system() {
        Gaussian.run(&mut device(), &InputSpec::new("t", 48, 0, 0, 1.0));
    }

    #[test]
    fn host_solve_small_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = host_solve(&a, &b, 2);
        assert!((x[0] - 1.0).abs() < 1e-5);
        assert!((x[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn ge_launch_count_is_2n() {
        let mut dev = device();
        Gaussian.run(&mut dev, &InputSpec::new("t", 32, 0, 0, 1.0));
        assert_eq!(dev.stats().len(), 2 * 31);
    }
}
