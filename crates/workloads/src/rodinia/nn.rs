//! NN — Rodinia nearest neighbor: computes the distance from every record
//! of an unstructured data set to a query point (the k smallest are then
//! selected on the host, as in the original code). A single trivially
//! parallel, bandwidth-bound kernel over short records.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::f32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 256;

struct DistKernel {
    lat: DevBuffer<f32>,
    lng: DevBuffer<f32>,
    dist: DevBuffer<f32>,
    q_lat: f32,
    q_lng: f32,
    n: usize,
}

impl Kernel for DistKernel {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.lat)
            .buf(&self.lng)
            .buf(&self.dist)
            .f(self.q_lat)
            .f(self.q_lng)
            .u(self.n as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "nn_euclid"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        // Each thread handles element gtid: 2 fma + 1 sfu.
        Some(KernelFootprint::per_block(
            grid,
            3.0 * block_threads as f64,
            |b, fp| {
                let own = Span::range(b as u64 * block_threads as u64, block_threads as u64);
                fp.read(&k.lat, own);
                fp.read(&k.lng, own);
                fp.write(&k.dist, own);
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n {
                return;
            }
            let dlat = t.ld(&k.lat, i) - k.q_lat;
            let dlng = t.ld(&k.lng, i) - k.q_lng;
            t.fma32(2);
            t.sfu(1);
            t.st(&k.dist, i, (dlat * dlat + dlng * dlng).sqrt());
        });
    }
}

/// The NN benchmark.
pub struct NearestNeighbor;

impl Benchmark for NearestNeighbor {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "nn",
            name: "NN",
            suite: Suite::Rodinia,
            kernels: 1,
            regular: true,
            description: "k-nearest neighbors in an unstructured data set",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 42k data points ("nnlist"); the benchmark loops over many
        // query batches.
        vec![InputSpec::new(
            "42k data points",
            42_000,
            10,
            0,
            4_200_000.0,
        )]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        let lat = f32_vec(n, 0.0, 90.0, input.seed);
        let lng = f32_vec(n, 0.0, 180.0, input.seed + 1);
        let k = DistKernel {
            lat: dev.alloc_from(&lat),
            lng: dev.alloc_from(&lng),
            dist: dev.alloc::<f32>(n),
            q_lat: 45.0,
            q_lng: 90.0,
            n,
        };
        let reps = input.m.max(1);
        for _ in 0..reps {
            dev.launch_with(
                &k,
                (n as u32).div_ceil(BLOCK),
                BLOCK,
                LaunchOpts {
                    work_multiplier: input.mult / reps as f64,
                },
            );
            dev.host_gap(0.002);
        }
        let dist = dev.read(&k.dist);
        // Host selects the nearest (k = 1 check).
        let (mut best_i, mut best_d) = (0usize, f32::MAX);
        for (i, &d) in dist.iter().enumerate() {
            if d < best_d {
                best_d = d;
                best_i = i;
            }
        }
        let expect = (0..n)
            .min_by(|&a, &b| {
                let da = (lat[a] - 45.0).powi(2) + (lng[a] - 90.0).powi(2);
                let dbv = (lat[b] - 45.0).powi(2) + (lng[b] - 90.0).powi(2);
                da.partial_cmp(&dbv).unwrap()
            })
            .unwrap();
        assert_eq!(best_i, expect, "nearest neighbor mismatch");
        RunOutput {
            checksum: best_d as f64,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn nn_finds_nearest() {
        NearestNeighbor.run(&mut device(), &InputSpec::new("t", 4096, 2, 0, 1.0));
    }

    #[test]
    fn nn_is_bandwidth_bound_and_regular() {
        let mut dev = device();
        NearestNeighbor.run(&mut dev, &InputSpec::new("t", 4096, 1, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.compute_intensity() < 2.0);
        assert!(c.divergence() < 0.05);
    }
}
