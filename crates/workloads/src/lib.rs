//! # workloads
//!
//! The 34 GPGPU benchmark programs the paper characterizes, re-implemented
//! as functional SIMT kernels on the [`kepler_sim`] device, plus synthetic
//! generators for the paper's inputs.
//!
//! Every program computes its *real* algorithm — results are read back and
//! validated against host references in each module's tests — while its
//! memory/compute trace drives the simulator's timing and power model. The
//! paper's five suites map to the five modules:
//!
//! * [`lonestar`] — irregular graph/mesh codes: BH, L-BFS (plus the
//!   `atomic`, `wla`, `wlw`, `wlc` variants), DMR, MST, PTA, SSSP (plus
//!   `wln`, `wlc`), NSP.
//! * [`parboil`] — P-BFS, CUTCP, HISTO, LBM, MRIQ, SAD, SGEMM, STEN, TPACF.
//! * [`rodinia`] — BP, R-BFS, GE, MUM, NN, NW, PF.
//! * [`shoc`] — S-BFS, FFT, MF, MD, QTC, ST, S2D.
//! * [`sdk`] — EIP, EP, NB, SC.
//!
//! [`registry`] exposes the full Table-1 inventory; [`bench::Benchmark`] is
//! the interface the characterization harness drives.

pub mod bench;
pub mod inputs;
pub mod lonestar;
pub mod parboil;
pub mod registry;
pub mod rodinia;
pub mod sdk;
pub mod shoc;

pub use bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
