//! SC — the CUDA SDK parallel prefix sum ("scan").
//!
//! Three-kernel Blelloch scan: (1) per-block exclusive scan in shared
//! memory producing block sums, (2) a single-block scan of the block sums,
//! (3) a uniform add distributing the scanned sums. Bandwidth-bound with
//! heavy shared-memory traffic.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::u32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, KernelResources, LaunchOpts, ParamKey,
    Span,
};

const BLOCK: u32 = 256;
/// Elements scanned per block (two per thread, as in the SDK code).
const TILE: usize = 2 * BLOCK as usize;

/// Kernel 1: exclusive scan of each tile; writes the tile's total to
/// `block_sums`.
struct BlockScan {
    input: DevBuffer<u32>,
    output: DevBuffer<u32>,
    block_sums: DevBuffer<u32>,
    n: usize,
}

impl Kernel for BlockScan {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.input)
            .buf(&self.output)
            .buf(&self.block_sums)
            .u(self.n as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "scan_block"
    }
    fn resources(&self) -> KernelResources {
        KernelResources {
            regs_per_thread: 24,
            shared_bytes: (TILE * 4) as u32,
        }
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let tile = TILE as u64;
        // Up- plus downsweep: ~2 int ops per element.
        Some(KernelFootprint::per_block(
            grid,
            2.0 * tile as f64,
            |b, fp| {
                let own = Span::range(b as u64 * tile, tile);
                fp.read(&k.input, own);
                fp.write(&k.output, own);
                fp.write(&k.block_sums, Span::point(b as u64));
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let temp = blk.shared_alloc::<u32>(TILE);
        let base = blk.block_idx() as usize * TILE;
        let (input, output, sums, n) = (self.input, self.output, self.block_sums, self.n);

        blk.for_each_thread(|t| {
            let i = t.tid() as usize;
            for k in [2 * i, 2 * i + 1] {
                let g = base + k;
                let v = if g < n { t.ld(&input, g) } else { 0 };
                t.sst(&temp, k, v);
            }
        });

        // Upsweep.
        let mut stride = 1usize;
        while stride < TILE {
            blk.for_each_thread(|t| {
                let i = t.tid() as usize;
                let idx = (i + 1) * stride * 2 - 1;
                if idx < TILE {
                    let a = t.sld(&temp, idx - stride);
                    let b = t.sld(&temp, idx);
                    t.int_op(1);
                    t.sst(&temp, idx, a.wrapping_add(b));
                }
            });
            stride *= 2;
        }
        // Record the total and clear the last element.
        blk.for_each_thread(|t| {
            if t.tid() == 0 {
                let total = t.sld(&temp, TILE - 1);
                t.st(&sums, blk_idx(t), total);
                t.sst(&temp, TILE - 1, 0);
            }
        });
        // Downsweep.
        stride = TILE / 2;
        while stride > 0 {
            blk.for_each_thread(|t| {
                let i = t.tid() as usize;
                let idx = (i + 1) * stride * 2 - 1;
                if idx < TILE {
                    let a = t.sld(&temp, idx - stride);
                    let b = t.sld(&temp, idx);
                    t.int_op(1);
                    t.sst(&temp, idx - stride, b);
                    t.sst(&temp, idx, a.wrapping_add(b));
                }
            });
            stride /= 2;
        }

        blk.for_each_thread(|t| {
            let i = t.tid() as usize;
            for k in [2 * i, 2 * i + 1] {
                let g = base + k;
                if g < n {
                    let v = t.sld(&temp, k);
                    t.st(&output, g, v);
                }
            }
        });
    }
}

fn blk_idx(t: &kepler_sim::ThreadCtx) -> usize {
    t.block_idx() as usize
}

/// Kernel 2: single-block exclusive scan of the block sums (sequential in
/// thread 0 over a small array, as the SDK does for the top level).
struct ScanSums {
    sums: DevBuffer<u32>,
    count: usize,
}

impl Kernel for ScanSums {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new().buf(&self.sums).u(self.count as u64).done()
    }

    fn name(&self) -> &'static str {
        "scan_sums"
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        // Single-block sequential scan: reads and rewrites the sums array.
        Some(KernelFootprint::per_block(
            grid,
            k.count as f64,
            |_b, fp| {
                let all = Span::range(0, k.count as u64);
                fp.read(&k.sums, all);
                fp.write(&k.sums, all);
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let (sums, count) = (self.sums, self.count);
        blk.for_each_thread(|t| {
            if t.tid() == 0 {
                let mut acc = 0u32;
                for i in 0..count {
                    let v = t.ld(&sums, i);
                    t.int_op(1);
                    t.st(&sums, i, acc);
                    acc = acc.wrapping_add(v);
                }
            }
        });
    }
}

/// Kernel 3: add each block's scanned sum to its tile.
struct UniformAdd {
    output: DevBuffer<u32>,
    block_sums: DevBuffer<u32>,
    n: usize,
}

impl Kernel for UniformAdd {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.output)
            .buf(&self.block_sums)
            .u(self.n as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "scan_uniform_add"
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let tile = TILE as u64;
        Some(KernelFootprint::per_block(grid, tile as f64, |b, fp| {
            let own = Span::range(b as u64 * tile, tile);
            fp.read(&k.block_sums, Span::point(b as u64));
            fp.read(&k.output, own);
            fp.write(&k.output, own);
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let base = blk.block_idx() as usize * TILE;
        let (output, sums, n) = (self.output, self.block_sums, self.n);
        let bidx = blk.block_idx() as usize;
        blk.for_each_thread(|t| {
            let offset = t.ld(&sums, bidx);
            let i = t.tid() as usize;
            for k in [2 * i, 2 * i + 1] {
                let g = base + k;
                if g < n {
                    let v = t.ld(&output, g);
                    t.int_op(1);
                    t.st(&output, g, v.wrapping_add(offset));
                }
            }
        });
    }
}

/// SC — parallel prefix sum.
pub struct Scan;

/// Host exclusive prefix sum.
pub fn host_exclusive_scan(v: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(v.len());
    let mut acc = 0u32;
    for &x in v {
        out.push(acc);
        acc = acc.wrapping_add(x);
    }
    out
}

impl Benchmark for Scan {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "sc",
            name: "SC",
            suite: Suite::CudaSdk,
            kernels: 3,
            regular: true,
            description: "Work-efficient parallel prefix sum (Blelloch scan)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 2^26 elements; the SDK sample re-scans many times.
        let sim_n = 1usize << 17;
        let mult = ((1u64 << 26) as f64 / sim_n as f64) * 352.0;
        vec![InputSpec::new("2^26 elements", sim_n, 0, 0, mult)]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        let data = u32_vec(n, 1000, input.seed);
        let inp = dev.alloc_from(&data);
        let out = dev.alloc::<u32>(n);
        let nblocks = n.div_ceil(TILE);
        let sums = dev.alloc::<u32>(nblocks);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        dev.launch_with(
            &BlockScan {
                input: inp,
                output: out,
                block_sums: sums,
                n,
            },
            nblocks as u32,
            BLOCK,
            opts,
        );
        dev.launch_with(
            &ScanSums {
                sums,
                count: nblocks,
            },
            1,
            32,
            opts,
        );
        dev.launch_with(
            &UniformAdd {
                output: out,
                block_sums: sums,
                n,
            },
            nblocks as u32,
            BLOCK,
            opts,
        );
        let result = dev.read(&out);
        let expect = host_exclusive_scan(&data);
        assert_eq!(result, expect, "scan result mismatch");
        RunOutput {
            checksum: *result.last().unwrap() as f64,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn scan_exact_power_of_two() {
        let input = InputSpec::new("t", 4096, 0, 0, 1.0);
        Scan.run(&mut device(), &input); // panics on mismatch
    }

    #[test]
    fn scan_ragged_length() {
        let input = InputSpec::new("t", 3000, 0, 0, 1.0);
        Scan.run(&mut device(), &input);
    }

    #[test]
    fn scan_tiny() {
        let input = InputSpec::new("t", 5, 0, 0, 1.0);
        Scan.run(&mut device(), &input);
    }

    #[test]
    fn host_scan_reference() {
        assert_eq!(host_exclusive_scan(&[1, 2, 3]), vec![0, 1, 3]);
        assert_eq!(host_exclusive_scan(&[]), Vec::<u32>::new());
    }

    #[test]
    fn scan_uses_shared_memory_heavily() {
        let mut dev = device();
        Scan.run(&mut dev, &InputSpec::new("t", 8192, 0, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.shared_accesses + c.lane_ops[6] > c.useful_bytes / 8.0);
    }
}
