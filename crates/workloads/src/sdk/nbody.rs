//! NB — the CUDA SDK all-pairs n-body simulation.
//!
//! The classic shared-memory-tiled O(n²) force kernel: each block strides
//! over tiles of bodies, stages a tile in shared memory, and every thread
//! accumulates the gravitational acceleration of its own body against the
//! staged tile. Highly regular, compute-bound, excellent cache behaviour —
//! the paper's example of a code whose power drops super-linearly under
//! core DVFS and that is essentially immune to ECC.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::points::plummer;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, KernelResources, LaunchOpts, ParamKey,
    Span,
};

const BLOCK: u32 = 256;
const SOFTENING: f32 = 1e-2;

struct Bodies {
    x: DevBuffer<f32>,
    y: DevBuffer<f32>,
    z: DevBuffer<f32>,
    m: DevBuffer<f32>,
    ax: DevBuffer<f32>,
    ay: DevBuffer<f32>,
    az: DevBuffer<f32>,
    n: usize,
}

struct ForceKernel<'a> {
    b: &'a Bodies,
}

impl Kernel for ForceKernel<'_> {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.b.x)
            .buf(&self.b.y)
            .buf(&self.b.z)
            .buf(&self.b.m)
            .buf(&self.b.ax)
            .buf(&self.b.ay)
            .buf(&self.b.az)
            .u(self.b.n as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "nbody_force"
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            regs_per_thread: 40,
            shared_bytes: BLOCK * 16,
        }
    }

    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let b = self.b;
        // 10 flops per interaction, n interactions per thread.
        let ops = 10.0 * b.n as f64 * block_threads as f64;
        Some(KernelFootprint::per_block(grid, ops, |blkid, fp| {
            let own = Span::range(blkid as u64 * block_threads as u64, block_threads as u64);
            fp.read(&b.x, own);
            fp.read(&b.y, own);
            fp.read(&b.z, own);
            // Every block stages every tile of bodies.
            fp.read_all(&b.x);
            fp.read_all(&b.y);
            fp.read_all(&b.z);
            fp.read_all(&b.m);
            fp.write(&b.ax, own);
            fp.write(&b.ay, own);
            fp.write(&b.az, own);
        }))
    }

    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        let n = b.n;
        let dim = blk.block_dim() as usize;
        let tile_x = blk.shared_alloc::<f32>(dim);
        let tile_y = blk.shared_alloc::<f32>(dim);
        let tile_z = blk.shared_alloc::<f32>(dim);
        let tile_m = blk.shared_alloc::<f32>(dim);
        // Per-thread state persisted across tile phases.
        let mut pos = vec![[0.0f32; 3]; dim];
        let mut acc = vec![[0.0f32; 3]; dim];

        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i < n {
                pos[t.tid() as usize] = [t.ld(&b.x, i), t.ld(&b.y, i), t.ld(&b.z, i)];
            }
        });

        let tiles = n.div_ceil(dim);
        for tile in 0..tiles {
            let base = tile * dim;
            let cnt = dim.min(n - base);
            blk.for_each_thread(|t| {
                let j = base + t.tid() as usize;
                if j < n {
                    let ti = t.tid() as usize;
                    let v = (t.ld(&b.x, j), t.ld(&b.y, j), t.ld(&b.z, j), t.ld(&b.m, j));
                    t.sst(&tile_x, ti, v.0);
                    t.sst(&tile_y, ti, v.1);
                    t.sst(&tile_z, ti, v.2);
                    t.sst(&tile_m, ti, v.3);
                }
            });
            blk.for_each_thread(|t| {
                let i = t.gtid() as usize;
                if i >= n {
                    return;
                }
                let ti = t.tid() as usize;
                let p = pos[ti];
                let a = &mut acc[ti];
                for j in 0..cnt {
                    let dx = t.shared_get(&tile_x, j) - p[0];
                    let dy = t.shared_get(&tile_y, j) - p[1];
                    let dz = t.shared_get(&tile_z, j) - p[2];
                    let r2 = dx * dx + dy * dy + dz * dz + SOFTENING;
                    let inv = 1.0 / r2.sqrt();
                    let s = t.shared_get(&tile_m, j) * inv * inv * inv;
                    a[0] += s * dx;
                    a[1] += s * dy;
                    a[2] += s * dz;
                }
                // 6 FMA + 3 MUL + 1 SFU per interaction, 4 shared reads.
                t.fma32(6 * cnt as u32);
                t.fp32_mul(3 * cnt as u32);
                t.sfu(cnt as u32);
                t.smem(4 * cnt as u32);
            });
        }

        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i < n {
                let a = acc[t.tid() as usize];
                t.st(&b.ax, i, a[0]);
                t.st(&b.ay, i, a[1]);
                t.st(&b.az, i, a[2]);
            }
        });
    }
}

/// The NB benchmark program.
pub struct NBody;

/// Host reference all-pairs accelerations (same math as the kernel).
pub fn host_forces(x: &[f32], y: &[f32], z: &[f32], m: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let n = x.len();
    let (mut ax, mut ay, mut az) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    for i in 0..n {
        for j in 0..n {
            let dx = x[j] - x[i];
            let dy = y[j] - y[i];
            let dz = z[j] - z[i];
            let r2 = dx * dx + dy * dy + dz * dz + SOFTENING;
            let inv = 1.0 / r2.sqrt();
            let s = m[j] * inv * inv * inv;
            ax[i] += s * dx;
            ay[i] += s * dy;
            az[i] += s * dz;
        }
    }
    (ax, ay, az)
}

impl NBody {
    fn setup(&self, dev: &mut Device, input: &InputSpec) -> Bodies {
        let (xs, ys, zs, ms) = plummer(input.n, input.seed);
        Bodies {
            x: dev.alloc_from(&xs),
            y: dev.alloc_from(&ys),
            z: dev.alloc_from(&zs),
            m: dev.alloc_from(&ms),
            ax: dev.alloc::<f32>(input.n),
            ay: dev.alloc::<f32>(input.n),
            az: dev.alloc::<f32>(input.n),
            n: input.n,
        }
    }
}

impl Benchmark for NBody {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "nb",
            name: "NB",
            suite: Suite::CudaSdk,
            kernels: 1,
            regular: true,
            description: "All-pairs n-body simulation (shared-memory tiled)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 100k, 250k and 1m bodies. All-pairs work scales with n².
        vec![
            InputSpec::new("100k bodies", 1024, 0, 2, 220_000.0),
            InputSpec::new("250k bodies", 1536, 0, 2, 146_000.0),
            InputSpec::new("1m bodies", 2048, 0, 2, 167_000.0),
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let b = self.setup(dev, input);
        let grid = (input.n as u32).div_ceil(BLOCK);
        let steps = input.aux.max(1);
        for _ in 0..steps {
            dev.launch_with(
                &ForceKernel { b: &b },
                grid,
                BLOCK,
                LaunchOpts {
                    work_multiplier: input.mult / steps as f64,
                },
            );
            dev.host_gap(0.01);
        }
        let ax = dev.read(&b.ax);
        assert!(ax.iter().all(|v| v.is_finite()), "NB produced NaN forces");
        let checksum: f64 = ax.iter().map(|&v| v.abs() as f64).sum();
        assert!(checksum > 0.0, "NB produced zero forces");
        RunOutput {
            checksum,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn forces_match_host_reference() {
        let mut dev = device();
        let input = InputSpec::new("test", 300, 0, 1, 1.0);
        let nb = NBody;
        let b = nb.setup(&mut dev, &input);
        dev.launch(&ForceKernel { b: &b }, 2, BLOCK);
        let (hax, _, haz) = host_forces(
            &dev.read(&b.x),
            &dev.read(&b.y),
            &dev.read(&b.z),
            &dev.read(&b.m),
        );
        let gax = dev.read(&b.ax);
        let gaz = dev.read(&b.az);
        for i in 0..300 {
            assert!(
                (gax[i] - hax[i]).abs() <= 1e-4 * hax[i].abs().max(1.0),
                "ax[{i}]: {} vs {}",
                gax[i],
                hax[i]
            );
            assert!((gaz[i] - haz[i]).abs() <= 1e-4 * haz[i].abs().max(1.0));
        }
    }

    #[test]
    fn nb_is_compute_bound() {
        let mut dev = device();
        let nb = NBody;
        let input = InputSpec::new("test", 1024, 0, 1, 1.0);
        nb.run(&mut dev, &input);
        let c = dev.total_counters();
        // Way more compute than memory traffic.
        assert!(c.compute_intensity() > 50.0, "{}", c.compute_intensity());
        assert!(c.divergence() < 0.1, "{}", c.divergence());
    }

    #[test]
    fn run_produces_stable_checksum() {
        let nb = NBody;
        let input = InputSpec::new("test", 512, 0, 1, 1.0);
        let a = nb.run(&mut device(), &input);
        let b = nb.run(&mut device(), &input);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn inputs_match_paper() {
        let inputs = NBody.inputs();
        assert_eq!(inputs.len(), 3);
        // Larger paper inputs run on larger simulated body counts.
        assert!(inputs[2].n > inputs[0].n);
    }
}
