//! CUDA SDK sample programs: EIP, EP (Monte Carlo π), NB (all-pairs
//! n-body), SC (parallel prefix sum). The paper's compute-bound, highly
//! regular group — these draw the highest power and respond super-linearly
//! to core DVFS.

pub mod estimate_pi;
pub mod nbody;
pub mod scan;

pub use estimate_pi::{EstimatePi, EstimatePiInline};
pub use nbody::NBody;
pub use scan::Scan;
