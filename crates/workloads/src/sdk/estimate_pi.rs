//! EIP / EP — the CUDA SDK Monte Carlo π estimators.
//!
//! Both draw uniform points in the unit square and count hits inside the
//! quarter circle. **EIP** (`MC_EstimatePiInlineP`) generates its random
//! numbers *inline* in the counting kernel — almost no memory traffic.
//! **EP** (`MC_EstimatePiP`) first materializes batches of random numbers
//! in global memory, then a second kernel consumes them — same math, much
//! more DRAM traffic. The pair is a natural ablation of compute- vs
//! memory-intensity on identical work.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, Span};

const BLOCK: u32 = 256;

/// Marsaglia xorshift32 — the per-thread PRNG both kernels use.
#[inline]
fn xorshift32(state: &mut u32) -> u32 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    *state = x;
    x
}

#[inline]
fn to_unit(x: u32) -> f32 {
    (x >> 8) as f32 * (1.0 / 16_777_216.0)
}

/// Kernel 1 of EIP: inline sampling, block-level shared reduction, one
/// atomic per block.
struct InlineSample {
    samples_per_thread: u32,
    hits: DevBuffer<u32>,
    seed: u32,
}

impl Kernel for InlineSample {
    fn name(&self) -> &'static str {
        "eip_sample"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        // ~11 ops per sample; the only global traffic is one atomic/block.
        let ops = 11.0 * k.samples_per_thread as f64 * block_threads as f64;
        Some(KernelFootprint::per_block(grid, ops, |_b, fp| {
            fp.atomic(&k.hits, Span::point(0));
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let dim = blk.block_dim() as usize;
        let partial = blk.shared_alloc::<u32>(dim);
        let m = self.samples_per_thread;
        let seed = self.seed;
        let hits = self.hits;
        blk.for_each_thread(|t| {
            let mut state = seed ^ (t.gtid().wrapping_mul(0x9E3779B9) | 1);
            let mut count = 0u32;
            for _ in 0..m {
                let x = to_unit(xorshift32(&mut state));
                let y = to_unit(xorshift32(&mut state));
                if x * x + y * y <= 1.0 {
                    count += 1;
                }
            }
            // ~8 int ops for the two xorshifts, 2 FMA + 1 compare per sample.
            t.int_op(8 * m);
            t.fma32(2 * m);
            t.fp32_add(m);
            t.sst(&partial, t.tid() as usize, count);
        });
        // Tree reduction in shared memory.
        let mut stride = dim / 2;
        while stride > 0 {
            blk.for_each_thread(|t| {
                let i = t.tid() as usize;
                if i < stride {
                    let a = t.sld(&partial, i);
                    let b = t.sld(&partial, i + stride);
                    t.int_op(1);
                    t.sst(&partial, i, a + b);
                }
            });
            stride /= 2;
        }
        blk.for_each_thread(|t| {
            if t.tid() == 0 {
                let total = t.sld(&partial, 0);
                t.atomic_add_u32(&hits, 0, total);
            }
        });
    }
}

/// Kernel 2 of EIP/EP: folds the per-run hit counter into the estimate slot
/// (a trivial single-block pass, as in the SDK's final reduce).
struct Finalize {
    hits: DevBuffer<u32>,
    out: DevBuffer<f32>,
    total_samples: f32,
}

impl Kernel for Finalize {
    fn name(&self) -> &'static str {
        "pi_finalize"
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        Some(KernelFootprint::per_block(grid, 2.0, |_b, fp| {
            fp.read(&k.hits, Span::point(0));
            fp.write(&k.out, Span::point(0));
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let (hits, out, total) = (self.hits, self.out, self.total_samples);
        blk.for_each_thread(|t| {
            if t.tid() == 0 {
                let h = t.ld(&hits, 0);
                t.fp32_mul(2);
                t.st(&out, 0, 4.0 * h as f32 / total);
            }
        });
    }
}

/// Kernel 1 of EP: generate random-number batches into global memory.
struct GenerateBatch {
    randoms: DevBuffer<f32>,
    per_thread: u32,
    seed: u32,
}

impl Kernel for GenerateBatch {
    fn name(&self) -> &'static str {
        "ep_generate"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let dim = block_threads as u64;
        let stride = grid as u64 * dim; // grid-stride = total threads
        let ops = 4.0 * k.per_thread as f64 * block_threads as f64;
        Some(KernelFootprint::per_block(grid, ops, |b, fp| {
            // Grid-strided coalesced stores: one contiguous run per round.
            for round in 0..k.per_thread as u64 {
                fp.write(
                    &k.randoms,
                    Span::range(round * stride + b as u64 * dim, dim),
                );
            }
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let (buf, m, seed) = (self.randoms, self.per_thread, self.seed);
        blk.for_each_thread(|t| {
            let mut state = seed ^ (t.gtid().wrapping_mul(0x85EBCA6B) | 1);
            let stride = t.grid_threads() as usize;
            let mut idx = t.gtid() as usize;
            t.int_op(4 * m);
            for _ in 0..m {
                // Grid-strided coalesced stores.
                let v = to_unit(xorshift32(&mut state));
                t.st(&buf, idx, v);
                idx += stride;
            }
        });
    }
}

/// Kernel 2 of EP: consume random batches from global memory and count.
struct CountBatch {
    randoms: DevBuffer<f32>,
    pairs_per_thread: u32,
    hits: DevBuffer<u32>,
}

impl Kernel for CountBatch {
    fn name(&self) -> &'static str {
        "ep_count"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let dim = block_threads as u64;
        let stride = grid as u64 * dim;
        let m = k.pairs_per_thread as u64;
        let ops = 4.0 * m as f64 * block_threads as f64;
        Some(KernelFootprint::per_block(grid, ops, |b, fp| {
            // x rounds 0..m, y rounds m..2m — one contiguous run each.
            for round in 0..2 * m {
                fp.read(
                    &k.randoms,
                    Span::range(round * stride + b as u64 * dim, dim),
                );
            }
            fp.atomic(&k.hits, Span::point(0));
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let dim = blk.block_dim() as usize;
        let partial = blk.shared_alloc::<u32>(dim);
        let (buf, m, hits) = (self.randoms, self.pairs_per_thread, self.hits);
        blk.for_each_thread(|t| {
            let stride = t.grid_threads() as usize;
            let mut count = 0u32;
            let mut idx = t.gtid() as usize;
            for _ in 0..m {
                let x = t.ld(&buf, idx);
                let y = t.ld(&buf, idx + stride * m as usize);
                if x * x + y * y <= 1.0 {
                    count += 1;
                }
                idx += stride;
            }
            t.fma32(2 * m);
            t.fp32_add(m);
            t.sst(&partial, t.tid() as usize, count);
        });
        let mut stride = dim / 2;
        while stride > 0 {
            blk.for_each_thread(|t| {
                let i = t.tid() as usize;
                if i < stride {
                    let a = t.sld(&partial, i);
                    let b = t.sld(&partial, i + stride);
                    t.int_op(1);
                    t.sst(&partial, i, a + b);
                }
            });
            stride /= 2;
        }
        blk.for_each_thread(|t| {
            if t.tid() == 0 {
                let total = t.sld(&partial, 0);
                t.atomic_add_u32(&hits, 0, total);
            }
        });
    }
}

fn check_pi(estimate: f32, total_samples: f64) {
    // 4-sigma Monte Carlo bound.
    let sigma = 4.0 * (std::f64::consts::PI / 4.0 * (1.0 - std::f64::consts::PI / 4.0)).sqrt()
        / total_samples.sqrt();
    let err = (estimate as f64 - std::f64::consts::PI).abs();
    assert!(
        err < 4.0 * sigma + 1e-3,
        "pi estimate {estimate} off by {err} (sigma {sigma})"
    );
}

/// EIP — `MC_EstimatePiInlineP`.
pub struct EstimatePiInline;

impl Benchmark for EstimatePiInline {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "eip",
            name: "EIP",
            suite: Suite::CudaSdk,
            kernels: 2,
            regular: true,
            description: "Monte Carlo estimation of Pi with an inline PRNG",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: no input parameters; n = threads, m = samples/thread.
        vec![InputSpec::new("none", 16384, 48, 0, 1_750_000.0)]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let hits = dev.alloc::<u32>(1);
        let out = dev.alloc::<f32>(1);
        let total = (input.n * input.m) as f32;
        dev.launch_with(
            &InlineSample {
                samples_per_thread: input.m as u32,
                hits,
                seed: input.seed as u32 | 1,
            },
            (input.n as u32).div_ceil(BLOCK),
            BLOCK,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        dev.launch(
            &Finalize {
                hits,
                out,
                total_samples: total,
            },
            1,
            32,
        );
        let estimate = dev.read_at(&out, 0);
        check_pi(estimate, total as f64);
        RunOutput {
            checksum: estimate as f64,
            items: None,
        }
    }
}

/// EP — `MC_EstimatePiP` (batched random-number generation).
pub struct EstimatePi;

impl Benchmark for EstimatePi {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "ep",
            name: "EP",
            suite: Suite::CudaSdk,
            kernels: 2,
            regular: true,
            description: "Monte Carlo estimation of Pi with batched PRNG",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new("none", 16384, 24, 0, 333_000.0)]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let threads = input.n;
        let pairs = input.m as u32;
        let randoms = dev.alloc::<f32>(threads * 2 * pairs as usize);
        let hits = dev.alloc::<u32>(1);
        let out = dev.alloc::<f32>(1);
        let grid = (threads as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        dev.launch_with(
            &GenerateBatch {
                randoms,
                per_thread: 2 * pairs,
                seed: input.seed as u32 | 1,
            },
            grid,
            BLOCK,
            opts,
        );
        dev.launch_with(
            &CountBatch {
                randoms,
                pairs_per_thread: pairs,
                hits,
            },
            grid,
            BLOCK,
            opts,
        );
        let total = (threads * pairs as usize) as f32;
        dev.launch(
            &Finalize {
                hits,
                out,
                total_samples: total,
            },
            1,
            32,
        );
        let estimate = dev.read_at(&out, 0);
        check_pi(estimate, total as f64);
        RunOutput {
            checksum: estimate as f64,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn eip_estimates_pi() {
        let out = EstimatePiInline.run(&mut device(), &InputSpec::new("t", 4096, 32, 0, 1.0));
        assert!((out.checksum - std::f64::consts::PI).abs() < 0.1);
    }

    #[test]
    fn ep_estimates_pi() {
        let out = EstimatePi.run(&mut device(), &InputSpec::new("t", 4096, 16, 0, 1.0));
        assert!((out.checksum - std::f64::consts::PI).abs() < 0.1);
    }

    #[test]
    fn ep_moves_more_memory_than_eip() {
        let mut d1 = device();
        EstimatePiInline.run(&mut d1, &InputSpec::new("t", 4096, 16, 0, 1.0));
        let mut d2 = device();
        EstimatePi.run(&mut d2, &InputSpec::new("t", 4096, 16, 0, 1.0));
        let eip_bytes = d1.total_counters().useful_bytes;
        let ep_bytes = d2.total_counters().useful_bytes;
        assert!(
            ep_bytes > 10.0 * eip_bytes,
            "ep {ep_bytes} vs eip {eip_bytes}"
        );
    }

    #[test]
    fn xorshift_is_full_period_sane() {
        let mut s = 1u32;
        let mut seen_high = false;
        for _ in 0..1000 {
            let v = xorshift32(&mut s);
            assert_ne!(v, 0);
            if v > u32::MAX / 2 {
                seen_high = true;
            }
        }
        assert!(seen_high);
    }

    #[test]
    fn both_report_two_kernels_like_table1() {
        assert_eq!(EstimatePiInline.spec().kernels, 2);
        assert_eq!(EstimatePi.spec().kernels, 2);
    }
}
