//! SHOC: the Scalable HeterOgeneous Computing suite (ORNL) — device-level
//! microbenchmarks and kernels, including MaxFlops (the paper's champion
//! energy saver under core DVFS) and the notoriously
//! overhead-dominated S-BFS of Table 4.

pub mod bfs;
pub mod fft;
pub mod maxflops;
pub mod md;
pub mod qtc;
pub mod sort;
pub mod stencil2d;

pub use bfs::SBfs;
pub use fft::Fft;
pub use maxflops::MaxFlops;
pub use md::MolecularDynamics;
pub use qtc::Qtc;
pub use sort::RadixSort;
pub use stencil2d::Stencil2d;
