//! MD — SHOC molecular dynamics: the Lennard-Jones force kernel over
//! neighbor lists for atoms scattered in a 3-D box. Gather-heavy
//! (uncoalesced neighbor loads) with an FP-dense inner loop.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::points::lattice_atoms;
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 128;
const EPS: f32 = 1.0;
const SIGMA: f32 = 1.0;

struct LjKernel {
    xyz: DevBuffer<f32>,
    neigh: DevBuffer<u32>,
    force: DevBuffer<f32>,
    n: usize,
    max_neigh: usize,
}

impl Kernel for LjKernel {
    fn name(&self) -> &'static str {
        "md_lj_force"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n {
                return;
            }
            let (xi, yi, zi) = (
                t.ld(&k.xyz, 3 * i),
                t.ld(&k.xyz, 3 * i + 1),
                t.ld(&k.xyz, 3 * i + 2),
            );
            let (mut fx, mut fy, mut fz) = (0.0f32, 0.0f32, 0.0f32);
            for s in 0..k.max_neigh {
                let j = t.ld(&k.neigh, i * k.max_neigh + s) as usize;
                if j == u32::MAX as usize {
                    break;
                }
                let dx = xi - t.ld(&k.xyz, 3 * j);
                let dy = yi - t.ld(&k.xyz, 3 * j + 1);
                let dz = zi - t.ld(&k.xyz, 3 * j + 2);
                let r2 = dx * dx + dy * dy + dz * dz;
                let inv_r2 = 1.0 / r2.max(1e-6);
                let s6 = (SIGMA * SIGMA * inv_r2).powi(3);
                let f = 24.0 * EPS * inv_r2 * s6 * (2.0 * s6 - 1.0);
                fx += f * dx;
                fy += f * dy;
                fz += f * dz;
                t.fma32(10);
                t.fp32_mul(4);
                t.sfu(2);
            }
            t.st(&k.force, 3 * i, fx);
            t.st(&k.force, 3 * i + 1, fy);
            t.st(&k.force, 3 * i + 2, fz);
        });
    }
}

/// Host reference LJ force from the same neighbor lists.
pub fn host_lj(xyz: &[[f32; 3]], neigh: &[u32], max_neigh: usize) -> Vec<f32> {
    let n = xyz.len();
    let mut force = vec![0.0f32; 3 * n];
    for i in 0..n {
        for s in 0..max_neigh {
            let j = neigh[i * max_neigh + s];
            if j == u32::MAX {
                break;
            }
            let j = j as usize;
            let dx = xyz[i][0] - xyz[j][0];
            let dy = xyz[i][1] - xyz[j][1];
            let dz = xyz[i][2] - xyz[j][2];
            let r2 = dx * dx + dy * dy + dz * dz;
            let inv_r2 = 1.0 / r2.max(1e-6);
            let s6 = (SIGMA * SIGMA * inv_r2).powi(3);
            let f = 24.0 * EPS * inv_r2 * s6 * (2.0 * s6 - 1.0);
            force[3 * i] += f * dx;
            force[3 * i + 1] += f * dy;
            force[3 * i + 2] += f * dz;
        }
    }
    force
}

/// Build neighbor lists within `cutoff` (host-side, as SHOC does).
pub fn neighbor_lists(xyz: &[[f32; 3]], cutoff: f32, max_neigh: usize) -> Vec<u32> {
    let n = xyz.len();
    let mut out = vec![u32::MAX; n * max_neigh];
    for i in 0..n {
        let mut cnt = 0;
        for j in 0..n {
            if i == j || cnt >= max_neigh {
                continue;
            }
            let d2 = (xyz[i][0] - xyz[j][0]).powi(2)
                + (xyz[i][1] - xyz[j][1]).powi(2)
                + (xyz[i][2] - xyz[j][2]).powi(2);
            if d2 < cutoff * cutoff {
                out[i * max_neigh + cnt] = j as u32;
                cnt += 1;
            }
        }
    }
    out
}

/// The MD benchmark.
pub struct MolecularDynamics;

impl Benchmark for MolecularDynamics {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "md",
            name: "MD",
            suite: Suite::Shoc,
            kernels: 1,
            regular: false,
            description: "Lennard-Jones n-body force kernel over neighbor lists",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(
            "default benchmark input",
            4096,
            24,
            0,
            172_000.0,
        )]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let box_len = (input.n as f32).cbrt() * 1.2;
        let atoms = lattice_atoms(input.n, box_len, input.seed);
        let neigh = neighbor_lists(&atoms, 1.8, input.m);
        let flat: Vec<f32> = atoms.iter().flat_map(|p| p.to_vec()).collect();
        let k = LjKernel {
            xyz: dev.alloc_from(&flat),
            neigh: dev.alloc_from(&neigh),
            force: dev.alloc::<f32>(3 * input.n),
            n: input.n,
            max_neigh: input.m,
        };
        dev.launch_with(
            &k,
            (input.n as u32).div_ceil(BLOCK),
            BLOCK,
            LaunchOpts {
                work_multiplier: input.mult,
            },
        );
        let got = dev.read(&k.force);
        let expect = host_lj(&atoms, &neigh, input.m);
        for i in (0..3 * input.n).step_by(131) {
            assert!(
                (got[i] - expect[i]).abs() < 1e-3 * expect[i].abs().max(1.0),
                "force[{i}]: {} vs {}",
                got[i],
                expect[i]
            );
        }
        RunOutput {
            checksum: got.iter().map(|&v| v.abs() as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn md_matches_host() {
        MolecularDynamics.run(&mut device(), &InputSpec::new("t", 512, 16, 0, 1.0));
    }

    #[test]
    fn lj_repels_when_close() {
        // Two atoms much closer than sigma: strong repulsion pushes them
        // apart (force on atom 0 points away from atom 1).
        let xyz = vec![[0.0f32, 0.0, 0.0], [0.5, 0.0, 0.0]];
        let neigh = neighbor_lists(&xyz, 2.0, 4);
        let f = host_lj(&xyz, &neigh, 4);
        assert!(f[0] < 0.0, "fx {}", f[0]);
    }

    #[test]
    fn neighbor_gathers_are_uncoalesced() {
        let mut dev = device();
        MolecularDynamics.run(&mut dev, &InputSpec::new("t", 512, 16, 0, 1.0));
        let c = dev.total_counters();
        let unc = 1.0 - c.ideal_transactions / c.transactions;
        assert!(unc > 0.2, "uncoalesced {unc}");
    }
}
