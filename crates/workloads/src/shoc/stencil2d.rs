//! S2D — SHOC Stencil2D: a 9-point single-precision stencil over a 2-D
//! grid, iterated. Shared-memory tiles with halo; memory-bound.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::f32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 128;
const W_CENTER: f32 = 0.25;
const W_CARD: f32 = 0.15;
const W_DIAG: f32 = 0.0375;

struct S2dKernel {
    src: DevBuffer<f32>,
    dst: DevBuffer<f32>,
    n: usize,
}

impl Kernel for S2dKernel {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.src)
            .buf(&self.dst)
            .u(self.n as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "stencil2d_9pt"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let halo = k.n as u64 + 1; // widest neighbor offset (diagonal row)
        let dim = block_threads as u64;
        // 2 int + 6 add + 3 fma per interior thread.
        Some(KernelFootprint::per_block(
            grid,
            11.0 * dim as f64,
            |b, fp| {
                let base = b as u64 * dim;
                // src is read-only this sweep (ping-pong partner is dst).
                let lo = base.saturating_sub(halo);
                fp.read(&k.src, Span::range(lo, base + dim + halo - lo));
                // Boundary threads skip the store; full range stays disjoint.
                fp.write(&k.dst, Span::range(base, dim));
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let n = k.n;
        blk.for_each_thread(|t| {
            let gid = t.gtid() as usize;
            if gid >= n * n {
                return;
            }
            let (x, y) = (gid % n, gid / n);
            t.int_op(2);
            if x == 0 || y == 0 || x == n - 1 || y == n - 1 {
                return;
            }
            let c = t.ld(&k.src, gid);
            let card = t.ld(&k.src, gid - 1)
                + t.ld(&k.src, gid + 1)
                + t.ld(&k.src, gid - n)
                + t.ld(&k.src, gid + n);
            let diag = t.ld(&k.src, gid - n - 1)
                + t.ld(&k.src, gid - n + 1)
                + t.ld(&k.src, gid + n - 1)
                + t.ld(&k.src, gid + n + 1);
            t.fp32_add(6);
            t.fma32(3);
            t.st(&k.dst, gid, W_CENTER * c + W_CARD * card + W_DIAG * diag);
        });
    }
}

/// Host reference sweep.
pub fn host_s2d(grid: &[f32], n: usize) -> Vec<f32> {
    let mut out = grid.to_vec();
    for y in 1..n - 1 {
        for x in 1..n - 1 {
            let i = y * n + x;
            let card = grid[i - 1] + grid[i + 1] + grid[i - n] + grid[i + n];
            let diag = grid[i - n - 1] + grid[i - n + 1] + grid[i + n - 1] + grid[i + n + 1];
            out[i] = W_CENTER * grid[i] + W_CARD * card + W_DIAG * diag;
        }
    }
    out
}

/// The S2D benchmark.
pub struct Stencil2d;

impl Benchmark for Stencil2d {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "s2d",
            name: "S2D",
            suite: Suite::Shoc,
            kernels: 1,
            regular: true,
            description: "9-point single-precision 2-D stencil",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(
            "default benchmark input",
            256,
            10,
            0,
            529_000.0,
        )]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        let init = f32_vec(n * n, 0.0, 1.0, input.seed);
        let mut bufs = [dev.alloc_from(&init), dev.alloc::<f32>(n * n)];
        dev.write(&bufs[1], &init);
        let sweeps = input.m.max(1);
        let mut expect = init;
        for _ in 0..sweeps {
            dev.launch_with(
                &S2dKernel {
                    src: bufs[0],
                    dst: bufs[1],
                    n,
                },
                ((n * n) as u32).div_ceil(BLOCK),
                BLOCK,
                LaunchOpts {
                    work_multiplier: input.mult / sweeps as f64,
                },
            );
            bufs.swap(0, 1);
            expect = host_s2d(&expect, n);
        }
        let got = dev.read(&bufs[0]);
        for i in 0..n * n {
            assert!((got[i] - expect[i]).abs() < 1e-4, "cell {i}");
        }
        RunOutput {
            checksum: got.iter().map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn s2d_matches_host() {
        Stencil2d.run(&mut device(), &InputSpec::new("t", 32, 3, 0, 1.0));
    }

    #[test]
    fn s2d_is_memory_bound() {
        let mut dev = device();
        Stencil2d.run(&mut dev, &InputSpec::new("t", 64, 2, 0, 1.0));
        assert!(dev.total_counters().compute_intensity() < 2.0);
    }

    #[test]
    fn weights_sum_to_one() {
        assert!((W_CENTER + 4.0 * W_CARD + 4.0 * W_DIAG - 1.0).abs() < 1e-6);
    }
}
