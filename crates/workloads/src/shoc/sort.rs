//! ST — SHOC radix sort on u32 key/value pairs: per-pass digit histogram
//! (shared-memory + atomics), an exclusive scan of the global histogram,
//! and a scatter. The scatter's data-dependent destinations are the
//! classic source of uncoalesced writes.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::u32_vec;
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, Span};

const BLOCK: u32 = 256;
const RADIX_BITS: u32 = 4;
const BUCKETS: usize = 1 << RADIX_BITS;

struct HistKernel {
    keys: DevBuffer<u32>,
    hist: DevBuffer<u32>,
    n: usize,
    shift: u32,
}
impl Kernel for HistKernel {
    fn name(&self) -> &'static str {
        "sort_histogram"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let dim = block_threads as u64;
        Some(KernelFootprint::per_block(
            grid,
            4.0 * dim as f64,
            |b, fp| {
                fp.read(&k.keys, Span::range(b as u64 * dim, dim));
                // Block-local counts flush into the global histogram atomically.
                fp.atomic_all(&k.hist);
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let local = blk.shared_alloc::<u32>(BUCKETS);
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n {
                return;
            }
            let d = ((t.ld(&k.keys, i) >> k.shift) & (BUCKETS as u32 - 1)) as usize;
            t.int_op(2);
            let cur = t.shared_get(&local, d);
            t.shared_set(&local, d, cur + 1);
            t.smem(2);
        });
        blk.for_each_thread(|t| {
            let b = t.tid() as usize;
            if b < BUCKETS {
                let v = t.shared_get(&local, b);
                t.smem(1);
                if v > 0 {
                    t.atomic_add_u32(&k.hist, b, v);
                }
            }
        });
    }
}

/// Per-chunk histogram: each block counts the digits of its contiguous
/// chunk so the host can compute stable per-chunk scatter bases.
struct ChunkHistKernel {
    keys: DevBuffer<u32>,
    chunk_hist: DevBuffer<u32>,
    n: usize,
    chunk: usize,
    shift: u32,
}
impl Kernel for ChunkHistKernel {
    fn name(&self) -> &'static str {
        "sort_chunk_hist"
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let chunk = k.chunk as u64;
        Some(KernelFootprint::per_block(
            grid,
            2.0 * chunk as f64,
            |b, fp| {
                fp.read(&k.keys, Span::range(b as u64 * chunk, chunk));
                fp.write(
                    &k.chunk_hist,
                    Span::range(b as u64 * BUCKETS as u64, BUCKETS as u64),
                );
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let local = blk.shared_alloc::<u32>(BUCKETS);
        let base = blk.block_idx() as usize * k.chunk;
        let bidx = blk.block_idx() as usize;
        let per_thread = k.chunk / blk.block_dim() as usize;
        blk.for_each_thread(|t| {
            let start = base + t.tid() as usize * per_thread;
            for i in start..(start + per_thread).min(k.n).max(start) {
                let d = ((t.ld(&k.keys, i) >> k.shift) & (BUCKETS as u32 - 1)) as usize;
                t.int_op(2);
                let cur = t.shared_get(&local, d);
                t.shared_set(&local, d, cur + 1);
                t.smem(2);
            }
        });
        blk.for_each_thread(|t| {
            let b = t.tid() as usize;
            if b < BUCKETS {
                let v = t.shared_get(&local, b);
                t.smem(1);
                t.st(&k.chunk_hist, bidx * BUCKETS + b, v);
            }
        });
    }
}

/// Stable scatter: each block owns one contiguous chunk whose per-bucket
/// destination bases were precomputed by scanning the chunk histograms, so
/// stability does not depend on block execution order. Threads walk
/// contiguous sub-ranges in thread order, bumping block-local cursors in
/// shared memory.
struct ScatterKernel {
    keys_in: DevBuffer<u32>,
    vals_in: DevBuffer<u32>,
    keys_out: DevBuffer<u32>,
    vals_out: DevBuffer<u32>,
    /// Per-chunk exclusive bases: `chunk_base[chunk * BUCKETS + d]`.
    chunk_base: DevBuffer<u32>,
    n: usize,
    chunk: usize,
    shift: u32,
}
impl Kernel for ScatterKernel {
    fn name(&self) -> &'static str {
        "sort_scatter"
    }
    fn footprint(&self, grid: u32, _block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let chunk = k.chunk as u64;
        let buckets = BUCKETS as u64;
        Some(KernelFootprint::per_block(
            grid,
            3.0 * chunk as f64,
            |b, fp| {
                fp.read(&k.chunk_base, Span::range(b as u64 * buckets, buckets));
                fp.read(&k.keys_in, Span::range(b as u64 * chunk, chunk));
                fp.read(&k.vals_in, Span::range(b as u64 * chunk, chunk));
                // Destinations are data-dependent (the point of the scatter):
                // declared as whole-buffer writes, which is why this kernel can
                // never be proven parallel-safe.
                fp.write_all(&k.keys_out);
                fp.write_all(&k.vals_out);
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let cursors = blk.shared_alloc::<u32>(BUCKETS);
        let bidx = blk.block_idx() as usize;
        let base = bidx * k.chunk;
        blk.for_each_thread(|t| {
            let b = t.tid() as usize;
            if b < BUCKETS {
                let v = t.ld(&k.chunk_base, bidx * BUCKETS + b);
                t.sst(&cursors, b, v);
            }
        });
        let per_thread = k.chunk / blk.block_dim() as usize;
        blk.for_each_thread(|t| {
            let start = base + t.tid() as usize * per_thread;
            for i in start..(start + per_thread).min(k.n).max(start) {
                let key = t.ld(&k.keys_in, i);
                let val = t.ld(&k.vals_in, i);
                let d = ((key >> k.shift) & (BUCKETS as u32 - 1)) as usize;
                t.int_op(3);
                let pos = t.shared_get(&cursors, d) as usize;
                t.shared_set(&cursors, d, pos as u32 + 1);
                t.smem(2);
                t.st(&k.keys_out, pos, key);
                t.st(&k.vals_out, pos, val);
            }
        });
    }
}

/// The ST benchmark.
pub struct RadixSort;

impl Benchmark for RadixSort {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "st",
            name: "ST",
            suite: Suite::Shoc,
            kernels: 5,
            regular: true,
            description: "Radix sort on unsigned key/value pairs",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(
            "default benchmark input",
            1 << 16,
            0,
            0,
            22_400.0,
        )]
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // The radix passes build per-block digit histograms in shared
        // memory with plain read-modify-writes, relying on the model's
        // in-order thread execution within a block; flagged so the
        // simplification stays visible.
        &[
            "race-shared:sort_histogram",
            "race-shared:sort_chunk_hist",
            "race-shared:sort_scatter",
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        let keys = u32_vec(n, u32::MAX, input.seed);
        let vals: Vec<u32> = (0..n as u32).collect();
        let chunk = 1024usize;
        assert!(
            n.is_multiple_of(chunk),
            "input must be a multiple of {chunk}"
        );
        let chunks = n / chunk;
        let mut kin = dev.alloc_from(&keys);
        let mut vin = dev.alloc_from(&vals);
        let mut kout = dev.alloc::<u32>(n);
        let mut vout = dev.alloc::<u32>(n);
        let hist = dev.alloc::<u32>(BUCKETS);
        let chunk_hist = dev.alloc::<u32>(chunks * BUCKETS);
        let chunk_base = dev.alloc::<u32>(chunks * BUCKETS);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        let grid = (n as u32).div_ceil(BLOCK);
        for pass in 0..(32 / RADIX_BITS) {
            let shift = pass * RADIX_BITS;
            dev.fill(&hist, 0);
            dev.launch_with(
                &HistKernel {
                    keys: kin,
                    hist,
                    n,
                    shift,
                },
                grid,
                BLOCK,
                opts,
            );
            dev.launch_with(
                &ChunkHistKernel {
                    keys: kin,
                    chunk_hist,
                    n,
                    chunk,
                    shift,
                },
                chunks as u32,
                BLOCK,
                opts,
            );
            // Host-side scan over chunks x buckets (the real code uses a
            // small scan kernel; the cost is negligible either way).
            let ch = dev.read(&chunk_hist);
            let mut bases = vec![0u32; chunks * BUCKETS];
            let mut acc = 0u32;
            for d in 0..BUCKETS {
                for c in 0..chunks {
                    bases[c * BUCKETS + d] = acc;
                    acc += ch[c * BUCKETS + d];
                }
            }
            dev.write(&chunk_base, &bases);
            dev.launch_with(
                &ScatterKernel {
                    keys_in: kin,
                    vals_in: vin,
                    keys_out: kout,
                    vals_out: vout,
                    chunk_base,
                    n,
                    chunk,
                    shift,
                },
                chunks as u32,
                BLOCK,
                opts,
            );
            std::mem::swap(&mut kin, &mut kout);
            std::mem::swap(&mut vin, &mut vout);
        }
        let got = dev.read(&kin);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect, "sort produced wrong order");
        // Values must still pair with their keys.
        let got_vals = dev.read(&vin);
        for i in (0..n).step_by(997) {
            assert_eq!(keys[got_vals[i] as usize], got[i]);
        }
        RunOutput {
            checksum: got.iter().step_by(64).map(|&v| v as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn sort_produces_sorted_pairs() {
        RadixSort.run(&mut device(), &InputSpec::new("t", 4096, 0, 0, 1.0));
    }

    #[test]
    fn sort_runs_eight_passes() {
        let mut dev = device();
        RadixSort.run(&mut dev, &InputSpec::new("t", 1024, 0, 0, 1.0));
        let hist_launches = dev
            .stats()
            .iter()
            .filter(|l| l.kernel == "sort_histogram")
            .count();
        assert_eq!(hist_launches, 8);
    }

    #[test]
    fn scatter_writes_are_scattered() {
        let mut dev = device();
        RadixSort.run(&mut dev, &InputSpec::new("t", 4096, 0, 0, 1.0));
        let c = dev.total_counters();
        let unc = 1.0 - c.ideal_transactions / c.transactions;
        assert!(unc > 0.2, "uncoalesced {unc}");
    }
}
