//! S-BFS — SHOC breadth-first search: frontier-queue BFS over a uniform
//! random k-way graph. The SHOC harness times *many repeated traversals*
//! of one (low-diameter) graph, so per-vertex and per-edge costs come out
//! orders of magnitude worse than the road-network BFS codes — the
//! mechanism behind the paper's Table 4 outlier.

use crate::bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
use crate::inputs::graphs::{host_bfs, random_kway};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 64;
const INF: u32 = u32::MAX;

struct Frontier {
    row_ptr: DevBuffer<u32>,
    col: DevBuffer<u32>,
    cost: DevBuffer<u32>,
    wl_in: DevBuffer<u32>,
    wl_out: DevBuffer<u32>,
    out_size: DevBuffer<u32>,
    in_size: u32,
}

impl Kernel for Frontier {
    fn name(&self) -> &'static str {
        "sbfs_frontier"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid();
            if i >= k.in_size {
                return;
            }
            let v = t.ld(&k.wl_in, i as usize) as usize;
            let cv = t.ld(&k.cost, v);
            let lo = t.ld(&k.row_ptr, v) as usize;
            let hi = t.ld(&k.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&k.col, e) as usize;
                t.int_op(2);
                if t.atomic_cas_u32(&k.cost, w, INF, cv + 1) == INF {
                    let slot = t.atomic_add_u32(&k.out_size, 0, 1);
                    t.st(&k.wl_out, slot as usize, w as u32);
                }
            }
        });
    }
}

/// The S-BFS benchmark.
pub struct SBfs;

impl Benchmark for SBfs {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "sbfs",
            name: "S-BFS",
            suite: Suite::Shoc,
            kernels: 9,
            regular: false,
            description: "Repeated BFS traversals of a random k-way graph",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // n = nodes, m = out-degree, aux = traversal repetitions.
        vec![InputSpec::new(
            "default benchmark input",
            4096,
            4,
            40,
            1_900.0,
        )]
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // Same pattern as the other BFS ports: atomic level claims mixed
        // with plain reads of the frontier within a pass, correct because
        // levels only ever decrease.
        &["race-global:sbfs_frontier"]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let g = random_kway(input.n, input.m, input.seed);
        let src = 0usize;
        let k = Frontier {
            row_ptr: dev.alloc_from(&g.row_ptr),
            col: dev.alloc_from(&g.col),
            cost: dev.alloc_init(g.n, INF),
            wl_in: dev.alloc::<u32>(g.n + 1),
            wl_out: dev.alloc::<u32>(g.n + 1),
            out_size: dev.alloc::<u32>(1),
            in_size: 1,
        };
        let reps = input.aux.max(1);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        let mut final_cost = Vec::new();
        for _ in 0..reps {
            dev.fill(&k.cost, INF);
            dev.write_at(&k.cost, src, 0);
            dev.write_at(&k.wl_in, 0, src as u32);
            let mut in_size = 1u32;
            let mut flip = false;
            while in_size > 0 {
                dev.fill(&k.out_size, 0);
                let (wi, wo) = if flip {
                    (k.wl_out, k.wl_in)
                } else {
                    (k.wl_in, k.wl_out)
                };
                dev.launch_with(
                    &Frontier {
                        wl_in: wi,
                        wl_out: wo,
                        in_size,
                        ..k
                    },
                    in_size.div_ceil(BLOCK),
                    BLOCK,
                    opts,
                );
                in_size = dev.read_at(&k.out_size, 0);
                flip = !flip;
            }
            dev.host_gap(0.004);
            final_cost = dev.read(&k.cost);
        }
        assert_eq!(final_cost, host_bfs(&g, src), "S-BFS cost mismatch");
        // Items: ONE traversal's worth — which is exactly why the per-item
        // metrics look terrible for S-BFS (Table 4).
        RunOutput {
            checksum: final_cost.iter().filter(|&&c| c != INF).count() as f64,
            // SHOC's default graph is small (its Table-4 per-item costs
            // are 2-3 orders worse than the road-map codes because the
            // harness re-traverses a tiny graph many times).
            items: Some(ItemCounts {
                vertices: 16_000,
                edges: 64_000,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn sbfs_matches_host() {
        SBfs.run(&mut device(), &InputSpec::new("t", 512, 4, 2, 1.0));
    }

    #[test]
    fn repetitions_multiply_the_work() {
        let mut d1 = device();
        SBfs.run(&mut d1, &InputSpec::new("t", 512, 4, 1, 1.0));
        let mut d4 = device();
        SBfs.run(&mut d4, &InputSpec::new("t", 512, 4, 4, 1.0));
        let w1 = d1.total_counters().useful_bytes;
        let w4 = d4.total_counters().useful_bytes;
        assert!(w4 > 3.0 * w1, "w4 {w4} vs w1 {w1}");
    }

    #[test]
    fn random_graph_traversal_is_shallow() {
        let mut dev = device();
        SBfs.run(&mut dev, &InputSpec::new("t", 2048, 6, 1, 1.0));
        assert!(dev.stats().len() < 12, "launches {}", dev.stats().len());
    }
}
