//! FFT — SHOC fast Fourier transform: batched radix-2 Stockham FFT over
//! single-precision complex data, one kernel launch per stage with
//! power-of-two strided access (classic partially-coalesced pattern).

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::f32_vec;
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 256;

/// Emit the image of `{2 * (i / m) * m + i % m : i in [i0, i1)}` (the
/// `out0` butterfly destinations, relative to the batch base) as spans:
/// per-group ranges when the range covers few groups, per-offset strided
/// spans when it covers many — at most `min(m, groups) + 2` spans.
fn butterfly_out_spans(base: u64, m: u64, i0: u64, i1: u64, mut emit: impl FnMut(Span)) {
    let (q0, q1) = (i0 / m, (i1 - 1) / m + 1);
    if q1 - q0 <= m {
        for q in q0..q1 {
            let r0 = i0.max(q * m) - q * m;
            let r1 = i1.min((q + 1) * m) - q * m;
            emit(Span::range(base + 2 * q * m + r0, r1 - r0));
        }
    } else {
        let (qa, qb) = (i0.div_ceil(m), i1 / m);
        if q0 < qa {
            emit(Span::range(base + 2 * q0 * m + (i0 - q0 * m), qa * m - i0));
        }
        for r in 0..m {
            emit(Span::strided(base + 2 * qa * m + r, qb - qa, 2 * m));
        }
        if qb < q1 {
            emit(Span::range(base + 2 * qb * m, i1 - qb * m));
        }
    }
}

/// One Stockham (decimation-in-frequency) stage. At stage `s`,
/// `m = 2^s` and `l = n / (2m)`; thread `i` handles butterfly
/// `(j, k) = (i / m, i % m)`:
/// `y[k + 2jm] = a + b`, `y[k + 2jm + m] = w_j (a - b)` with
/// `a = x[k + jm]`, `b = x[k + jm + lm]`, `w_j = e^{-i pi j / l}`.
struct FftStage {
    re_in: DevBuffer<f32>,
    im_in: DevBuffer<f32>,
    re_out: DevBuffer<f32>,
    im_out: DevBuffer<f32>,
    n: usize,
    batch: usize,
    stage: u32,
}

impl Kernel for FftStage {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.re_in)
            .buf(&self.im_in)
            .buf(&self.re_out)
            .buf(&self.im_out)
            .u(self.n as u64)
            .u(self.batch as u64)
            .u(self.stage as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        "fft_radix2_stage"
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let half = (k.n / 2) as u64;
        let n = k.n as u64;
        let m = 1u64 << k.stage;
        let dim = block_threads as u64;
        let total = half * k.batch as u64;
        // 8 fma + 2 sfu + 6 int per butterfly.
        Some(KernelFootprint::per_block(
            grid,
            16.0 * dim as f64,
            |b, fp| {
                let g0 = b as u64 * dim;
                let g1 = (g0 + dim).min(total);
                if g0 >= g1 {
                    return;
                }
                // Split the block's gid range at batch boundaries.
                let mut g = g0;
                while g < g1 {
                    let bat = g / half;
                    let base = bat * n;
                    let i0 = g % half;
                    let i1 = (i0 + (g1 - g)).min(half);
                    // Inputs: a = x[i], b = x[i + n/2] within the batch
                    // (read-only this stage; ping-pong partner is written).
                    fp.read(&k.re_in, Span::range(base + i0, i1 - i0));
                    fp.read(&k.im_in, Span::range(base + i0, i1 - i0));
                    fp.read(&k.re_in, Span::range(base + half + i0, i1 - i0));
                    fp.read(&k.im_in, Span::range(base + half + i0, i1 - i0));
                    // Outputs: out0 = 2*(i/m)*m + i%m, out1 = out0 + m.
                    butterfly_out_spans(base, m, i0, i1, |s| {
                        fp.write(&k.re_out, s);
                        fp.write(&k.im_out, s);
                        let s1 = Span::strided(s.start + m, s.count, s.stride);
                        fp.write(&k.re_out, s1);
                        fp.write(&k.im_out, s1);
                    });
                    g += i1 - i0;
                }
            },
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        let half = k.n / 2;
        let m = 1usize << k.stage;
        let l = k.n / (2 * m);
        blk.for_each_thread(|t| {
            let gid = t.gtid() as usize;
            if gid >= half * k.batch {
                return;
            }
            let bat = gid / half;
            let i = gid % half;
            let base = bat * k.n;
            let j = i / m;
            let kk = i % m;
            let angle = -std::f32::consts::PI * j as f32 / l as f32;
            let (wr, wi) = (angle.cos(), angle.sin());
            let a_idx = base + kk + j * m;
            let b_idx = a_idx + l * m;
            let (ar, ai) = (t.ld(&k.re_in, a_idx), t.ld(&k.im_in, a_idx));
            let (br, bi) = (t.ld(&k.re_in, b_idx), t.ld(&k.im_in, b_idx));
            let (dr, di) = (ar - br, ai - bi);
            let out0 = base + kk + 2 * j * m;
            let out1 = out0 + m;
            t.fma32(8);
            t.sfu(2);
            t.int_op(6);
            t.st(&k.re_out, out0, ar + br);
            t.st(&k.im_out, out0, ai + bi);
            t.st(&k.re_out, out1, dr * wr - di * wi);
            t.st(&k.im_out, out1, dr * wi + di * wr);
        });
    }
}

/// Host reference DFT (O(n^2)) for validation of small transforms.
pub fn host_dft(re: &[f32], im: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = re.len();
    let mut or_ = vec![0.0f32; n];
    let mut oi = vec![0.0f32; n];
    for kk in 0..n {
        for j in 0..n {
            let ang = -2.0 * std::f32::consts::PI * (kk * j) as f32 / n as f32;
            let (c, s) = (ang.cos(), ang.sin());
            or_[kk] += re[j] * c - im[j] * s;
            oi[kk] += re[j] * s + im[j] * c;
        }
    }
    (or_, oi)
}

/// The FFT benchmark.
pub struct Fft;

impl Fft {
    /// Run a batched forward FFT; returns (re, im).
    fn fft(
        &self,
        dev: &mut Device,
        re: &[f32],
        im: &[f32],
        n: usize,
        batch: usize,
        mult: f64,
    ) -> (Vec<f32>, Vec<f32>) {
        let stages = n.trailing_zeros();
        let mut bufs = [
            (dev.alloc_from(re), dev.alloc_from(im)),
            (dev.alloc::<f32>(re.len()), dev.alloc::<f32>(im.len())),
        ];
        let work = ((n / 2 * batch) as u32).div_ceil(BLOCK);
        for stage in 0..stages {
            dev.launch_with(
                &FftStage {
                    re_in: bufs[0].0,
                    im_in: bufs[0].1,
                    re_out: bufs[1].0,
                    im_out: bufs[1].1,
                    n,
                    batch,
                    stage,
                },
                work,
                BLOCK,
                LaunchOpts {
                    work_multiplier: mult / stages as f64,
                },
            );
            bufs.swap(0, 1);
        }
        (dev.read(&bufs[0].0), dev.read(&bufs[0].1))
    }
}

impl Benchmark for Fft {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "fft",
            name: "FFT",
            suite: Suite::Shoc,
            kernels: 2,
            regular: true,
            description: "Batched radix-2 complex FFT (forward + inverse)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // n = transform size, m = batch count.
        vec![InputSpec::new(
            "default benchmark input",
            512,
            128,
            0,
            1_570_000.0,
        )]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let (n, batch) = (input.n, input.m);
        let re = f32_vec(n * batch, -1.0, 1.0, input.seed);
        let im = f32_vec(n * batch, -1.0, 1.0, input.seed + 1);
        let (gr, gi) = self.fft(dev, &re, &im, n, batch, input.mult);
        // Validate one batch element against the host DFT.
        let (er, ei) = host_dft(&re[..n], &im[..n]);
        for i in 0..n {
            assert!(
                (gr[i] - er[i]).abs() < 2e-2 * er[i].abs().max(1.0) + 2e-2,
                "re[{i}]: {} vs {}",
                gr[i],
                er[i]
            );
            assert!((gi[i] - ei[i]).abs() < 2e-2 * ei[i].abs().max(1.0) + 2e-2);
        }
        // Parseval check over the whole batch.
        let input_energy: f64 = re
            .iter()
            .zip(&im)
            .map(|(r, i)| (r * r + i * i) as f64)
            .sum();
        let output_energy: f64 = gr
            .iter()
            .zip(&gi)
            .map(|(r, i)| (r * r + i * i) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (input_energy - output_energy).abs() < 1e-2 * input_energy,
            "Parseval violated: {input_energy} vs {output_energy}"
        );
        RunOutput {
            checksum: output_energy,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn fft_matches_dft() {
        Fft.run(&mut device(), &InputSpec::new("t", 64, 4, 0, 1.0));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut dev = device();
        let n = 32;
        let mut re = vec![0.0f32; n];
        re[0] = 1.0;
        let im = vec![0.0f32; n];
        let (gr, gi) = Fft.fft(&mut dev, &re, &im, n, 1, 1.0);
        for i in 0..n {
            assert!((gr[i] - 1.0).abs() < 1e-4, "re[{i}] = {}", gr[i]);
            assert!(gi[i].abs() < 1e-4);
        }
    }

    #[test]
    fn stage_count_is_log2() {
        let mut dev = device();
        Fft.run(&mut dev, &InputSpec::new("t", 64, 2, 0, 1.0));
        assert_eq!(dev.stats().len(), 6);
    }
}
