//! QTC — SHOC quality-threshold clustering: repeatedly, every unclustered
//! point proposes the cluster of all points within the quality threshold
//! of itself; the largest proposal wins and its members are removed.
//! Quadratic candidate scans with shrinking point sets and a global
//! argmax reduction per round — divergent and reduction-heavy.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::util::f32_vec;
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 128;

struct CountKernel {
    xy: DevBuffer<f32>,
    clustered: DevBuffer<u32>,
    counts: DevBuffer<u32>,
    n: usize,
    thr2: f32,
}
impl Kernel for CountKernel {
    fn name(&self) -> &'static str {
        "qtc_count"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n {
                return;
            }
            if t.ld(&k.clustered, i) != 0 {
                t.st(&k.counts, i, 0);
                return;
            }
            let (xi, yi) = (t.ld(&k.xy, 2 * i), t.ld(&k.xy, 2 * i + 1));
            let mut cnt = 0u32;
            for j in 0..k.n {
                if t.ld(&k.clustered, j) != 0 {
                    continue;
                }
                let dx = t.ld(&k.xy, 2 * j) - xi;
                let dy = t.ld(&k.xy, 2 * j + 1) - yi;
                t.fma32(2);
                if dx * dx + dy * dy <= k.thr2 {
                    cnt += 1;
                }
            }
            t.int_op(k.n as u32);
            t.st(&k.counts, i, cnt);
        });
    }
}

/// Global argmax over candidate counts (packed value<<16|index atomicMax;
/// index inverted so ties break to the lowest index).
struct ArgmaxKernel {
    counts: DevBuffer<u32>,
    best: DevBuffer<u32>,
    n: usize,
}
impl Kernel for ArgmaxKernel {
    fn name(&self) -> &'static str {
        "qtc_reduce"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n {
                return;
            }
            let c = t.ld(&k.counts, i);
            t.int_op(3);
            let packed = (c << 16) | (0xFFFF - i as u32);
            t.atomic_max_u32(&k.best, 0, packed);
        });
    }
}

struct RemoveKernel {
    xy: DevBuffer<f32>,
    clustered: DevBuffer<u32>,
    n: usize,
    center: usize,
    thr2: f32,
    round: u32,
}
impl Kernel for RemoveKernel {
    fn name(&self) -> &'static str {
        "qtc_remove"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n || t.ld(&k.clustered, i) != 0 {
                return;
            }
            let dx = t.ld(&k.xy, 2 * i) - t.ld(&k.xy, 2 * k.center);
            let dy = t.ld(&k.xy, 2 * i + 1) - t.ld(&k.xy, 2 * k.center + 1);
            t.fma32(2);
            if dx * dx + dy * dy <= k.thr2 {
                t.st(&k.clustered, i, k.round);
            }
        });
    }
}

/// Host reference greedy QTC (same tie-breaking).
pub fn host_qtc(xy: &[f32], n: usize, thr2: f32) -> Vec<u32> {
    let mut clustered = vec![0u32; n];
    let mut round = 1u32;
    loop {
        let mut best = (0u32, usize::MAX);
        for i in 0..n {
            if clustered[i] != 0 {
                continue;
            }
            let mut cnt = 0;
            for j in 0..n {
                if clustered[j] != 0 {
                    continue;
                }
                let dx = xy[2 * j] - xy[2 * i];
                let dy = xy[2 * j + 1] - xy[2 * i + 1];
                if dx * dx + dy * dy <= thr2 {
                    cnt += 1;
                }
            }
            if cnt > best.0 || (cnt == best.0 && i < best.1) {
                best = (cnt, i);
            }
        }
        if best.0 == 0 {
            break;
        }
        for i in 0..n {
            if clustered[i] != 0 {
                continue;
            }
            let dx = xy[2 * i] - xy[2 * best.1];
            let dy = xy[2 * i + 1] - xy[2 * best.1 + 1];
            if dx * dx + dy * dy <= thr2 {
                clustered[i] = round;
            }
        }
        round += 1;
    }
    clustered
}

/// The QTC benchmark.
pub struct Qtc;

impl Benchmark for Qtc {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "qtc",
            name: "QTC",
            suite: Suite::Shoc,
            kernels: 6,
            regular: false,
            description: "Quality-threshold clustering (greedy largest-cluster removal)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(
            "default benchmark input",
            768,
            0,
            0,
            5_200.0,
        )]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let n = input.n;
        let thr2 = 0.02f32;
        let xy = f32_vec(2 * n, 0.0, 1.0, input.seed);
        let k = CountKernel {
            xy: dev.alloc_from(&xy),
            // Read for every point from the first launch on: must start as
            // an explicit "not clustered" zero, not fresh memory.
            clustered: dev.alloc_init::<u32>(n, 0),
            counts: dev.alloc::<u32>(n),
            n,
            thr2,
        };
        let best = dev.alloc::<u32>(1);
        let grid = (n as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: input.mult,
        };
        let mut round = 1u32;
        loop {
            dev.launch_with(&k, grid, BLOCK, opts);
            dev.fill(&best, 0);
            dev.launch_with(
                &ArgmaxKernel {
                    counts: k.counts,
                    best,
                    n,
                },
                grid,
                BLOCK,
                opts,
            );
            let packed = dev.read_at(&best, 0);
            let count = packed >> 16;
            if count == 0 {
                break;
            }
            let center = (0xFFFF - (packed & 0xFFFF)) as usize;
            dev.launch_with(
                &RemoveKernel {
                    xy: k.xy,
                    clustered: k.clustered,
                    n,
                    center,
                    thr2,
                    round,
                },
                grid,
                BLOCK,
                opts,
            );
            round += 1;
            assert!(round < 10_000, "QTC failed to converge");
        }
        let got = dev.read(&k.clustered);
        let expect = host_qtc(&xy, n, thr2);
        assert_eq!(got, expect, "QTC clustering mismatch");
        RunOutput {
            checksum: round as f64,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn qtc_matches_host() {
        Qtc.run(&mut device(), &InputSpec::new("t", 200, 0, 0, 1.0));
    }

    #[test]
    fn every_point_gets_clustered() {
        let xy = f32_vec(2 * 100, 0.0, 1.0, 3);
        let c = host_qtc(&xy, 100, 0.05);
        assert!(c.iter().all(|&v| v > 0));
    }

    #[test]
    fn bigger_threshold_fewer_clusters() {
        let xy = f32_vec(2 * 150, 0.0, 1.0, 4);
        let small = host_qtc(&xy, 150, 0.005);
        let large = host_qtc(&xy, 150, 0.3);
        let n_clusters = |c: &[u32]| c.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(n_clusters(&large) < n_clusters(&small));
    }
}
