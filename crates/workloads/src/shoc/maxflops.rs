//! MF — SHOC MaxFlops: pure-compute microkernels measuring the peak
//! floating-point throughput for different operation mixes (add, mul,
//! mul-add chains, in single and double precision). Zero memory traffic —
//! the paper's champion energy saver at the 614-MHz configuration.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use kepler_sim::{
    BlockCtx, DevBuffer, Device, Kernel, KernelFootprint, LaunchOpts, ParamKey, Span,
};

const BLOCK: u32 = 256;

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Add,
    Mul,
    MAdd,
    MulMAdd,
    AddDp,
    MAddDp,
}

struct FlopsKernel {
    out: DevBuffer<f32>,
    iters: u32,
    mix: Mix,
    n: usize,
}

impl Kernel for FlopsKernel {
    fn parallel_safe(&self) -> bool {
        true
    }
    fn params(&self) -> Vec<u64> {
        ParamKey::new()
            .buf(&self.out)
            .u(self.iters as u64)
            .u(self.mix as u64)
            .u(self.n as u64)
            .done()
    }

    fn name(&self) -> &'static str {
        match self.mix {
            Mix::Add => "maxflops_add1",
            Mix::Mul => "maxflops_mul1",
            Mix::MAdd => "maxflops_madd1",
            Mix::MulMAdd => "maxflops_mulmadd1",
            Mix::AddDp => "maxflops_add1_dp",
            Mix::MAddDp => "maxflops_madd1_dp",
        }
    }
    fn footprint(&self, grid: u32, block_threads: u32) -> Option<KernelFootprint> {
        let k = self;
        let flops_per_iter = match k.mix {
            Mix::Add | Mix::Mul | Mix::AddDp => 2.0,
            Mix::MAdd | Mix::MAddDp => 1.0,
            Mix::MulMAdd => 3.0,
        };
        let ops = flops_per_iter * k.iters as f64 * block_threads as f64;
        Some(KernelFootprint::per_block(grid, ops, |b, fp| {
            // The only memory traffic: one result store per thread.
            fp.write(
                &k.out,
                Span::range(b as u64 * block_threads as u64, block_threads as u64),
            );
        }))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k = self;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= k.n {
                return;
            }
            // Long unrolled dependent chains, as in the real kernels.
            let mut v = 0.999f32 + i as f32 * 1e-6;
            let mut vd = 0.999f64;
            for _ in 0..k.iters {
                match k.mix {
                    Mix::Add => {
                        v = v + 0.5 - 0.4999;
                        t.fp32_add(2);
                    }
                    Mix::Mul => {
                        v = v * 1.000001 * 0.999999;
                        t.fp32_mul(2);
                    }
                    Mix::MAdd => {
                        v = v * 0.999999 + 1e-7;
                        t.fma32(1);
                    }
                    Mix::MulMAdd => {
                        v = (v * 1.000001) * 0.5 + v * 0.4999995;
                        t.fp32_mul(1);
                        t.fma32(2);
                    }
                    Mix::AddDp => {
                        vd = vd + 0.5 - 0.4999;
                        t.fp64(2);
                    }
                    Mix::MAddDp => {
                        vd = vd * 0.999999 + 1e-7;
                        t.fp64(1);
                    }
                }
            }
            t.st(&k.out, i, v + vd as f32);
        });
    }
}

/// The MF benchmark.
pub struct MaxFlops;

impl Benchmark for MaxFlops {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "mf",
            name: "MF",
            suite: Suite::Shoc,
            kernels: 20,
            regular: true,
            description: "Peak floating-point throughput microkernels",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(
            "default benchmark input",
            26624,
            64,
            0,
            4_300_000.0,
        )]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let out = dev.alloc::<f32>(input.n);
        let grid = (input.n as u32).div_ceil(BLOCK);
        let mixes = [
            Mix::Add,
            Mix::Mul,
            Mix::MAdd,
            Mix::MulMAdd,
            Mix::AddDp,
            Mix::MAddDp,
        ];
        for mix in mixes {
            dev.launch_with(
                &FlopsKernel {
                    out,
                    iters: input.m as u32,
                    mix,
                    n: input.n,
                },
                grid,
                BLOCK,
                LaunchOpts {
                    work_multiplier: input.mult / mixes.len() as f64,
                },
            );
            dev.host_gap(0.003);
        }
        let v = dev.read(&out);
        assert!(v.iter().all(|x| x.is_finite()));
        RunOutput {
            checksum: v.iter().map(|&x| x as f64).sum(),
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn mf_runs_all_mixes() {
        let mut dev = device();
        MaxFlops.run(&mut dev, &InputSpec::new("t", 1024, 16, 0, 1.0));
        assert_eq!(dev.stats().len(), 6);
    }

    #[test]
    fn mf_has_essentially_no_memory_traffic() {
        let mut dev = device();
        MaxFlops.run(&mut dev, &InputSpec::new("t", 1024, 64, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.compute_intensity() > 10.0, "{}", c.compute_intensity());
    }

    #[test]
    fn dp_mixes_record_fp64() {
        let mut dev = device();
        MaxFlops.run(&mut dev, &InputSpec::new("t", 1024, 16, 0, 1.0));
        assert!(dev.total_counters().lane_ops[3] > 0.0);
    }
}
