//! The benchmark registry: the paper's Table-1 inventory (34 programs
//! across 5 suites) plus the alternate implementations studied in Table 3.

use crate::bench::Benchmark;
use crate::lonestar::{BarnesHut, Dmr, LBfs, LBfsVariant, Mst, Pta, Sssp, SsspVariant, SurveyProp};
use crate::parboil::{Cutcp, Histo, Lbm, Mriq, PBfs, Sad, Sgemm, Stencil3d, Tpacf};
use crate::rodinia::{
    BackProp, Gaussian, Mummer, NearestNeighbor, NeedlemanWunsch, Pathfinder, RBfs,
};
use crate::sdk::{EstimatePi, EstimatePiInline, NBody, Scan};
use crate::shoc::{Fft, MaxFlops, MolecularDynamics, Qtc, RadixSort, SBfs, Stencil2d};

/// The 34 programs of the paper's Table 1 (default implementations only),
/// in suite order.
pub fn all() -> Vec<Box<dyn Benchmark>> {
    vec![
        // CUDA SDK
        Box::new(EstimatePiInline),
        Box::new(EstimatePi),
        Box::new(NBody),
        Box::new(Scan),
        // LonestarGPU
        Box::new(BarnesHut),
        Box::new(LBfs::new(LBfsVariant::Default)),
        Box::new(Dmr),
        Box::new(Mst),
        Box::new(Pta),
        Box::new(Sssp::new(SsspVariant::Default)),
        Box::new(SurveyProp),
        // Parboil
        Box::new(PBfs),
        Box::new(Cutcp),
        Box::new(Histo),
        Box::new(Lbm),
        Box::new(Mriq),
        Box::new(Sad),
        Box::new(Sgemm),
        Box::new(Stencil3d),
        Box::new(Tpacf),
        // Rodinia
        Box::new(BackProp),
        Box::new(RBfs),
        Box::new(Gaussian),
        Box::new(Mummer),
        Box::new(NearestNeighbor),
        Box::new(NeedlemanWunsch),
        Box::new(Pathfinder),
        // SHOC
        Box::new(SBfs),
        Box::new(Fft),
        Box::new(MaxFlops),
        Box::new(MolecularDynamics),
        Box::new(Qtc),
        Box::new(RadixSort),
        Box::new(Stencil2d),
    ]
}

/// The alternate implementations of L-BFS and SSSP studied in Table 3
/// (plus the two L-BFS variants the paper could not measure).
pub fn variants() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(LBfs::new(LBfsVariant::Atomic)),
        Box::new(LBfs::new(LBfsVariant::Wla)),
        Box::new(LBfs::new(LBfsVariant::Wlw)),
        Box::new(LBfs::new(LBfsVariant::Wlc)),
        Box::new(Sssp::new(SsspVariant::Wln)),
        Box::new(Sssp::new(SsspVariant::Wlc)),
    ]
}

/// Look up any program (Table-1 default or variant) by key.
pub fn by_key(key: &str) -> Option<Box<dyn Benchmark>> {
    all()
        .into_iter()
        .chain(variants())
        .find(|b| b.spec().key == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::Suite;
    use std::collections::HashSet;

    #[test]
    fn exactly_34_programs() {
        assert_eq!(all().len(), 34);
    }

    #[test]
    fn keys_are_unique() {
        let keys: HashSet<&'static str> = all()
            .iter()
            .chain(variants().iter())
            .map(|b| b.spec().key)
            .collect();
        assert_eq!(keys.len(), 34 + 6);
    }

    #[test]
    fn suite_sizes_match_table1() {
        let count = |s: Suite| all().iter().filter(|b| b.spec().suite == s).count();
        assert_eq!(count(Suite::CudaSdk), 4);
        assert_eq!(count(Suite::LonestarGpu), 7);
        assert_eq!(count(Suite::Parboil), 9);
        assert_eq!(count(Suite::Rodinia), 7);
        assert_eq!(count(Suite::Shoc), 7);
    }

    #[test]
    fn every_program_has_inputs() {
        for b in all().iter().chain(variants().iter()) {
            assert!(!b.inputs().is_empty(), "{} has no inputs", b.spec().key);
            for i in b.inputs() {
                assert!(i.mult > 0.0);
            }
        }
    }

    #[test]
    fn lonestar_is_all_irregular_sdk_all_regular() {
        for b in all() {
            match b.spec().suite {
                Suite::LonestarGpu => assert!(!b.spec().regular, "{}", b.spec().key),
                Suite::CudaSdk => assert!(b.spec().regular, "{}", b.spec().key),
                _ => {}
            }
        }
    }

    #[test]
    fn by_key_finds_programs_and_variants() {
        assert!(by_key("nb").is_some());
        assert!(by_key("lbfs-atomic").is_some());
        assert!(by_key("sssp-wlc").is_some());
        assert!(by_key("nope").is_none());
    }

    #[test]
    fn kernel_counts_match_table1() {
        let expected = [
            ("eip", 2),
            ("ep", 2),
            ("nb", 1),
            ("sc", 3),
            ("bh", 9),
            ("lbfs", 5),
            ("dmr", 4),
            ("mst", 7),
            ("pta", 40),
            ("sssp", 2),
            ("nsp", 3),
            ("pbfs", 3),
            ("cutcp", 1),
            ("histo", 4),
            ("lbm", 1),
            ("mriq", 2),
            ("sad", 3),
            ("sgemm", 1),
            ("sten", 1),
            ("tpacf", 1),
            ("bp", 2),
            ("rbfs", 2),
            ("ge", 2),
            ("mum", 3),
            ("nn", 1),
            ("nw", 2),
            ("pf", 1),
            ("sbfs", 9),
            ("fft", 2),
            ("mf", 20),
            ("md", 1),
            ("qtc", 6),
            ("st", 5),
            ("s2d", 1),
        ];
        for (key, kernels) in expected {
            let b = by_key(key).unwrap_or_else(|| panic!("missing {key}"));
            assert_eq!(b.spec().kernels, kernels, "kernel count for {key}");
        }
    }
}
