//! BH — LonestarGPU Barnes-Hut n-body simulation.
//!
//! The real code's kernel pipeline, reproduced: (1) bounding-box reduction,
//! (2) octree build with atomic child-pointer claiming, (3) bottom-up
//! center-of-mass summarization, (4) force computation by divergent tree
//! traversal with the θ opening criterion, (5) integration. The traversal's
//! data-dependent control flow and scattered child loads make BH the
//! canonical irregular-but-compute-heavy program.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::points::plummer;
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 128;
const THETA2: f32 = 0.25; // θ = 0.5
const SOFTENING: f32 = 1e-2;
const EMPTY: i32 = -1;

struct BhBufs {
    // Bodies.
    x: DevBuffer<f32>,
    y: DevBuffer<f32>,
    z: DevBuffer<f32>,
    m: DevBuffer<f32>,
    ax: DevBuffer<f32>,
    ay: DevBuffer<f32>,
    az: DevBuffer<f32>,
    // Bounding box (as f32 atomics).
    min_c: DevBuffer<f32>,
    max_c: DevBuffer<f32>,
    // Octree: cells are allocated from a counter; child holds body ids
    // (< n), cell ids (>= n, offset by n), or EMPTY.
    child: DevBuffer<i32>,
    cell_x: DevBuffer<f32>,
    cell_y: DevBuffer<f32>,
    cell_z: DevBuffer<f32>,
    cell_m: DevBuffer<f32>,
    cell_half: DevBuffer<f32>,
    next_cell: DevBuffer<u32>,
    n: usize,
    max_cells: usize,
}

/// Kernel 1: bounding box via block-local reduction + global atomic min/max.
struct BoundingBox<'a> {
    b: &'a BhBufs,
}
impl Kernel for BoundingBox<'_> {
    fn name(&self) -> &'static str {
        "bh_bounding_box"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= b.n {
                return;
            }
            let (x, y, z) = (t.ld(&b.x, i), t.ld(&b.y, i), t.ld(&b.z, i));
            t.fp32_add(6);
            t.atomic_min_f32(&b.min_c, 0, x);
            t.atomic_min_f32(&b.min_c, 1, y);
            t.atomic_min_f32(&b.min_c, 2, z);
            // max via min of negated values.
            t.atomic_min_f32(&b.max_c, 0, -x);
            t.atomic_min_f32(&b.max_c, 1, -y);
            t.atomic_min_f32(&b.max_c, 2, -z);
        });
    }
}

/// Kernel 2: octree build. Each body walks from the root and claims a leaf
/// slot; occupied slots are split by allocating a new cell.
struct BuildTree<'a> {
    b: &'a BhBufs,
}
impl Kernel for BuildTree<'_> {
    fn name(&self) -> &'static str {
        "bh_build_tree"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        let n = b.n;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= n {
                return;
            }
            let (px, py, pz) = (t.ld(&b.x, i), t.ld(&b.y, i), t.ld(&b.z, i));
            // Walk down from the root cell (cell 0).
            let mut cell = 0usize;
            let mut depth = 0;
            loop {
                depth += 1;
                assert!(depth < 64, "octree insert runaway");
                let cx = t.ld(&b.cell_x, cell);
                let cy = t.ld(&b.cell_y, cell);
                let cz = t.ld(&b.cell_z, cell);
                let half = t.ld(&b.cell_half, cell);
                let oct =
                    ((px > cx) as usize) | ((py > cy) as usize) << 1 | ((pz > cz) as usize) << 2;
                t.int_op(6);
                t.fp32_add(3);
                let slot = cell * 8 + oct;
                let cur = t.ld(&b.child, slot);
                if cur == EMPTY {
                    // Claim the empty slot (CAS-style on the child array).
                    t.atomic_or_u32(&b.next_cell, 0, 0); // models the CAS traffic
                    t.st(&b.child, slot, i as i32);
                    break;
                } else if (cur as usize) < n {
                    // Occupied by a body: split by allocating a child cell
                    // and pushing the resident body down, then retry.
                    let new_cell = t.atomic_add_u32(&b.next_cell, 0, 1) as usize;
                    assert!(new_cell < b.max_cells, "octree cell pool exhausted");
                    let q = half / 2.0;
                    let nx = cx + if oct & 1 != 0 { q } else { -q };
                    let ny = cy + if oct & 2 != 0 { q } else { -q };
                    let nz = cz + if oct & 4 != 0 { q } else { -q };
                    t.fp32_add(4);
                    t.st(&b.cell_x, new_cell, nx);
                    t.st(&b.cell_y, new_cell, ny);
                    t.st(&b.cell_z, new_cell, nz);
                    t.st(&b.cell_half, new_cell, q);
                    // Re-insert the displaced body into the new cell.
                    let other = cur as usize;
                    let ox = t.ld(&b.x, other);
                    let oy = t.ld(&b.y, other);
                    let oz = t.ld(&b.z, other);
                    let ooct = ((ox > nx) as usize)
                        | ((oy > ny) as usize) << 1
                        | ((oz > nz) as usize) << 2;
                    t.int_op(6);
                    t.st(&b.child, new_cell * 8 + ooct, cur);
                    t.st(&b.child, slot, (n + new_cell) as i32);
                    // Continue walking into the new cell.
                    cell = new_cell;
                } else {
                    cell = cur as usize - n;
                }
            }
        });
    }
}

/// Kernel 3: bottom-up center-of-mass summarization. Cells are processed in
/// reverse allocation order (children always have higher ids than their
/// parent), one sweep.
struct Summarize<'a> {
    b: &'a BhBufs,
    num_cells: usize,
}
impl Kernel for Summarize<'_> {
    fn name(&self) -> &'static str {
        "bh_summarize"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        let num_cells = self.num_cells;
        let n = b.n;
        blk.for_each_thread(|t| {
            let r = t.gtid() as usize;
            if r >= num_cells {
                return;
            }
            let cell = num_cells - 1 - r;
            let mut mass = 0.0f32;
            let (mut mx, mut my, mut mz) = (0.0f32, 0.0f32, 0.0f32);
            for oct in 0..8 {
                let c = t.ld(&b.child, cell * 8 + oct);
                t.int_op(2);
                if c == EMPTY {
                    continue;
                }
                let (cm, cx, cy, cz) = if (c as usize) < n {
                    let j = c as usize;
                    (t.ld(&b.m, j), t.ld(&b.x, j), t.ld(&b.y, j), t.ld(&b.z, j))
                } else {
                    let j = c as usize - n;
                    (
                        t.ld(&b.cell_m, j),
                        t.ld(&b.cell_x, j),
                        t.ld(&b.cell_y, j),
                        t.ld(&b.cell_z, j),
                    )
                };
                mass += cm;
                mx += cm * cx;
                my += cm * cy;
                mz += cm * cz;
                t.fma32(4);
            }
            if mass > 0.0 {
                t.sfu(1);
                t.st(&b.cell_m, cell, mass);
                t.st(&b.cell_x, cell, mx / mass);
                t.st(&b.cell_y, cell, my / mass);
                t.st(&b.cell_z, cell, mz / mass);
            } else {
                t.st(&b.cell_m, cell, 0.0);
            }
        });
    }
}

/// Kernel 4: force computation by iterative tree traversal with the θ
/// opening criterion. Heavily divergent, scattered loads.
struct Force<'a> {
    b: &'a BhBufs,
    root_half: f32,
}
impl Kernel for Force<'_> {
    fn name(&self) -> &'static str {
        "bh_force"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        let n = b.n;
        let root_half = self.root_half;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= n {
                return;
            }
            let (px, py, pz) = (t.ld(&b.x, i), t.ld(&b.y, i), t.ld(&b.z, i));
            let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
            // Explicit traversal stack of (node, half-size).
            let mut stack: Vec<(i32, f32)> = vec![(n as i32, root_half)];
            while let Some((node, half)) = stack.pop() {
                t.int_op(2);
                if node == EMPTY {
                    continue;
                }
                let (cm, cx, cy, cz, is_body) = if (node as usize) < n {
                    let j = node as usize;
                    if j == i {
                        continue;
                    }
                    (
                        t.ld(&b.m, j),
                        t.ld(&b.x, j),
                        t.ld(&b.y, j),
                        t.ld(&b.z, j),
                        true,
                    )
                } else {
                    let j = node as usize - n;
                    (
                        t.ld(&b.cell_m, j),
                        t.ld(&b.cell_x, j),
                        t.ld(&b.cell_y, j),
                        t.ld(&b.cell_z, j),
                        false,
                    )
                };
                if cm <= 0.0 {
                    continue;
                }
                let dx = cx - px;
                let dy = cy - py;
                let dz = cz - pz;
                let d2 = dx * dx + dy * dy + dz * dz + SOFTENING;
                t.fma32(4);
                let s = 2.0 * half;
                if is_body || s * s < THETA2 * d2 {
                    // Far enough (or a body): apply the interaction.
                    let inv = 1.0 / d2.sqrt();
                    let f = cm * inv * inv * inv;
                    ax += f * dx;
                    ay += f * dy;
                    az += f * dz;
                    t.sfu(1);
                    t.fma32(5);
                } else {
                    // Open the cell.
                    let j = node as usize - n;
                    for oct in 0..8 {
                        let c = t.ld(&b.child, j * 8 + oct);
                        t.int_op(1);
                        if c != EMPTY {
                            stack.push((c, half / 2.0));
                        }
                    }
                }
            }
            t.st(&b.ax, i, ax);
            t.st(&b.ay, i, ay);
            t.st(&b.az, i, az);
        });
    }
}

/// Kernel 5: leapfrog-ish integration (position update from acceleration).
struct Integrate<'a> {
    b: &'a BhBufs,
    dt: f32,
}
impl Kernel for Integrate<'_> {
    fn name(&self) -> &'static str {
        "bh_integrate"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        let dt = self.dt;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= b.n {
                return;
            }
            let x = t.ld(&b.x, i) + dt * dt * t.ld(&b.ax, i);
            let y = t.ld(&b.y, i) + dt * dt * t.ld(&b.ay, i);
            let z = t.ld(&b.z, i) + dt * dt * t.ld(&b.az, i);
            t.fma32(6);
            t.st(&b.x, i, x);
            t.st(&b.y, i, y);
            t.st(&b.z, i, z);
        });
    }
}

/// The BH benchmark.
pub struct BarnesHut;

impl BarnesHut {
    fn setup(&self, dev: &mut Device, n: usize, seed: u64) -> BhBufs {
        let (xs, ys, zs, ms) = plummer(n, seed);
        let max_cells = 4 * n + 64;
        BhBufs {
            x: dev.alloc_from(&xs),
            y: dev.alloc_from(&ys),
            z: dev.alloc_from(&zs),
            m: dev.alloc_from(&ms),
            ax: dev.alloc::<f32>(n),
            ay: dev.alloc::<f32>(n),
            az: dev.alloc::<f32>(n),
            min_c: dev.alloc_init::<f32>(3, f32::MAX),
            max_c: dev.alloc_init::<f32>(3, f32::MAX),
            child: dev.alloc_init::<i32>(8 * max_cells, EMPTY),
            cell_x: dev.alloc::<f32>(max_cells),
            cell_y: dev.alloc::<f32>(max_cells),
            cell_z: dev.alloc::<f32>(max_cells),
            cell_m: dev.alloc::<f32>(max_cells),
            cell_half: dev.alloc::<f32>(max_cells),
            next_cell: dev.alloc::<u32>(1),
            n,
            max_cells,
        }
    }

    /// One full BH timestep; returns the root half-size used.
    fn step(&self, dev: &mut Device, b: &BhBufs, mult: f64) {
        let grid = (b.n as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: mult,
        };
        dev.fill(&b.min_c, f32::MAX);
        dev.fill(&b.max_c, f32::MAX);
        dev.launch_with(&BoundingBox { b }, grid, BLOCK, opts);
        let mins = dev.read(&b.min_c);
        let maxs: Vec<f32> = dev.read(&b.max_c).iter().map(|v| -v).collect();
        let half = (0..3)
            .map(|k| (maxs[k] - mins[k]) / 2.0)
            .fold(0.0f32, f32::max)
            + 1e-3;
        // Root cell 0 at the box center.
        dev.fill(&b.child, EMPTY);
        dev.fill(&b.next_cell, 1);
        dev.write_at(&b.cell_x, 0, (mins[0] + maxs[0]) / 2.0);
        dev.write_at(&b.cell_y, 0, (mins[1] + maxs[1]) / 2.0);
        dev.write_at(&b.cell_z, 0, (mins[2] + maxs[2]) / 2.0);
        dev.write_at(&b.cell_half, 0, half);
        dev.launch_with(&BuildTree { b }, grid, BLOCK, opts);
        let num_cells = dev.read_at(&b.next_cell, 0) as usize;
        // Bottom-up summarization: block interleaving may visit a parent
        // before its children, so sweep until the root mass accounts for
        // every body (the real code polls per-cell ready flags).
        let total_mass: f32 = dev.read(&b.m).iter().sum();
        for sweep in 0.. {
            dev.launch_with(
                &Summarize { b, num_cells },
                (num_cells as u32).div_ceil(BLOCK),
                BLOCK,
                opts,
            );
            if (dev.read_at(&b.cell_m, 0) - total_mass).abs() <= 1e-3 * total_mass {
                break;
            }
            assert!(sweep < 64, "summarize failed to converge");
        }
        dev.launch_with(&Force { b, root_half: half }, grid, BLOCK, opts);
        dev.launch_with(&Integrate { b, dt: 0.0025 }, grid, BLOCK, opts);
    }
}

impl Benchmark for BarnesHut {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "bh",
            name: "BH",
            suite: Suite::LonestarGpu,
            kernels: 9,
            regular: false,
            description: "Barnes-Hut approximate n-body simulation (octree)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: bodies-timesteps 10k-10k, 100k-10, 1m-1. BH work scales
        // ~n log n per step times the step count.
        vec![
            InputSpec::new("10k bodies, 10k steps", 1024, 0, 2, 3_000.0),
            InputSpec::new("100k bodies, 10 steps", 1536, 0, 2, 1_500.0),
            InputSpec::new("1m bodies, 1 step", 2048, 0, 2, 1_800.0),
        ]
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // Lock-free octree construction: insertion claims child slots and
        // publishes cell payloads through plain reads/writes (the original
        // polls a mass sentinel), and summarization walks cells other
        // blocks are still filling. All timing-dependent by design — the
        // paper's explanation for BH's response to clock changes.
        &[
            "race-global:bh_build_tree",
            "race-global:bh_summarize",
            "uninit-read:bh_summarize",
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let b = self.setup(dev, input.n, input.seed);
        let steps = input.aux.max(1);
        for _ in 0..steps {
            self.step(dev, &b, input.mult / steps as f64);
            dev.host_gap(0.005);
        }
        let ax = dev.read(&b.ax);
        assert!(ax.iter().all(|v| v.is_finite()), "BH produced NaN forces");
        let checksum: f64 = ax.iter().map(|&v| v.abs() as f64).sum();
        assert!(checksum > 0.0);
        RunOutput {
            checksum,
            items: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdk::nbody::host_forces;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn bh_forces_approximate_direct_sum() {
        let mut dev = device();
        let bh = BarnesHut;
        let b = bh.setup(&mut dev, 512, 7);
        bh.step(&mut dev, &b, 1.0);
        // Compare against direct O(n^2) forces *before* integration moved
        // the bodies: recompute host forces from the post-step... instead,
        // run a fresh setup and compute host forces on identical positions.
        let mut dev2 = device();
        let b2 = bh.setup(&mut dev2, 512, 7);
        let (hx, hy, hz) = host_forces(
            &dev2.read(&b2.x),
            &dev2.read(&b2.y),
            &dev2.read(&b2.z),
            &dev2.read(&b2.m),
        );
        let gx = dev.read(&b.ax);
        let gy = dev.read(&b.ay);
        let gz = dev.read(&b.az);
        // RMS relative error under θ=0.5 should be a few percent.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..512 {
            let e = ((gx[i] - hx[i]).powi(2) + (gy[i] - hy[i]).powi(2) + (gz[i] - hz[i]).powi(2))
                as f64;
            let m = (hx[i].powi(2) + hy[i].powi(2) + hz[i].powi(2)) as f64;
            num += e;
            den += m;
        }
        let rel = (num / den).sqrt();
        assert!(rel < 0.05, "BH rms relative force error {rel}");
    }

    #[test]
    fn tree_has_reasonable_size() {
        let mut dev = device();
        let bh = BarnesHut;
        let b = bh.setup(&mut dev, 1024, 3);
        bh.step(&mut dev, &b, 1.0);
        let cells = dev.read_at(&b.next_cell, 0) as usize;
        assert!(cells > 256 && cells < 4 * 1024, "cells {cells}");
    }

    #[test]
    fn bh_is_divergent_and_uncoalesced() {
        let mut dev = device();
        let bh = BarnesHut;
        let b = bh.setup(&mut dev, 1024, 3);
        bh.step(&mut dev, &b, 1.0);
        let c = dev.total_counters();
        assert!(c.divergence() > 0.2, "divergence {}", c.divergence());
        let unc = 1.0 - c.ideal_transactions / c.transactions;
        assert!(unc > 0.3, "uncoalesced {unc}");
    }

    #[test]
    fn run_executes_all_five_kernels() {
        let mut dev = device();
        BarnesHut.run(&mut dev, &InputSpec::new("t", 256, 0, 1, 1.0));
        let names: std::collections::HashSet<&str> =
            dev.stats().iter().map(|l| l.kernel.as_ref()).collect();
        for k in [
            "bh_bounding_box",
            "bh_build_tree",
            "bh_summarize",
            "bh_force",
            "bh_integrate",
        ] {
            assert!(names.contains(k), "missing kernel {k}");
        }
    }

    #[test]
    fn bh_much_cheaper_than_all_pairs() {
        // The whole point of Barnes-Hut: far fewer interactions than n^2.
        let mut dev = device();
        let bh = BarnesHut;
        let b = bh.setup(&mut dev, 2048, 3);
        bh.step(&mut dev, &b, 1.0);
        let flops = dev.total_counters().flops();
        let allpairs = 2048.0f64 * 2048.0 * 17.0;
        assert!(flops < allpairs / 2.0, "flops {flops} vs {allpairs}");
    }
}
