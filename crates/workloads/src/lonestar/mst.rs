//! MST — LonestarGPU minimum spanning tree via Boruvka's algorithm,
//! implemented as successive relaxations of minimum-weight component edges.
//!
//! Each round: (1) every node scans its edges and `atomicMin`s the cheapest
//! cross-component edge key into its component's slot, (2) a second scan
//! identifies the winning edge (keys are made unique by folding in the
//! undirected edge id, the classic Boruvka tie-break), (3) components hook
//! onto their chosen neighbor (mutual pairs broken by id), (4) pointer
//! jumping flattens the component forest, (5) node labels are refreshed.
//! Rounds at least halve the component count, so O(log n) rounds total.
//!
//! The edge scans are uncoalesced and the hook/jump kernels are heavily
//! divergent — the code the paper singles out for the largest active-runtime
//! increase (25%) when dropping to 614 MHz.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::graphs::{host_msf_weight, road_network, Csr};
use crate::lonestar::bfs::{road_inputs, road_items};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 256;
const NONE: u32 = u32::MAX;

struct MstBufs {
    row_ptr: DevBuffer<u32>,
    col: DevBuffer<u32>,
    /// Unique edge keys: `weight << 18 | undirected_edge_id`.
    key: DevBuffer<u32>,
    /// Original weights, for the tree total.
    weight: DevBuffer<u32>,
    comp: DevBuffer<u32>,
    best_key: DevBuffer<u32>,
    best_edge: DevBuffer<u32>,
    parent: DevBuffer<u32>,
    total: DevBuffer<u32>,
    changed: DevBuffer<u32>,
    n: usize,
}

/// Round kernel 1: per node, find the cheapest edge leaving its component.
struct FindMin<'a> {
    b: &'a MstBufs,
}
impl Kernel for FindMin<'_> {
    fn name(&self) -> &'static str {
        "mst_find_min"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= b.n {
                return;
            }
            let cv = t.ld(&b.comp, v) as usize;
            let lo = t.ld(&b.row_ptr, v) as usize;
            let hi = t.ld(&b.row_ptr, v + 1) as usize;
            let mut best = NONE;
            for e in lo..hi {
                let w = t.ld(&b.col, e) as usize;
                let cw = t.ld(&b.comp, w);
                t.int_op(2);
                if cw as usize != cv {
                    let k = t.ld(&b.key, e);
                    if k < best {
                        best = k;
                    }
                }
            }
            if best != NONE {
                t.atomic_min_u32(&b.best_key, cv, best);
            }
        });
    }
}

/// Round kernel 2: re-scan to find which edge owns the winning key.
struct ClaimEdge<'a> {
    b: &'a MstBufs,
}
impl Kernel for ClaimEdge<'_> {
    fn name(&self) -> &'static str {
        "mst_claim_edge"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= b.n {
                return;
            }
            let cv = t.ld(&b.comp, v) as usize;
            let want = t.ld(&b.best_key, cv);
            if want == NONE {
                return;
            }
            let lo = t.ld(&b.row_ptr, v) as usize;
            let hi = t.ld(&b.row_ptr, v + 1) as usize;
            for e in lo..hi {
                t.int_op(1);
                if t.ld(&b.key, e) == want {
                    t.st(&b.best_edge, cv, e as u32);
                }
            }
        });
    }
}

/// Round kernel 3: hook components along their chosen edges; mutual pairs
/// are broken in favour of the lower component id, which also claims the
/// edge weight for the tree total.
struct Hook<'a> {
    b: &'a MstBufs,
}
impl Kernel for Hook<'_> {
    fn name(&self) -> &'static str {
        "mst_hook"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let c = t.gtid() as usize;
            if c >= b.n {
                return;
            }
            // Only live component roots participate.
            if t.ld(&b.comp, c) as usize != c {
                return;
            }
            let e = t.ld(&b.best_edge, c);
            if e == NONE {
                return;
            }
            let w = t.ld(&b.col, e as usize) as usize;
            let target = t.ld(&b.comp, w) as usize;
            t.int_op(3);
            // Mutual selection: both endpoints picked the same undirected
            // edge (identical unique key).
            let target_edge = t.ld(&b.best_edge, target);
            let mutual = target_edge != NONE
                && t.ld(&b.key, target_edge as usize) == t.ld(&b.key, e as usize);
            if mutual && c > target {
                // The higher id yields; the lower id hooks and pays.
                return;
            }
            t.st(&b.parent, c, target as u32);
            let wt = t.ld(&b.weight, e as usize);
            t.atomic_add_u32(&b.total, 0, wt);
            t.st(&b.changed, 0, 1);
        });
    }
}

/// Round kernel 4: pointer jumping until the parent forest is flat.
struct Jump<'a> {
    b: &'a MstBufs,
}
impl Kernel for Jump<'_> {
    fn name(&self) -> &'static str {
        "mst_jump"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let c = t.gtid() as usize;
            if c >= b.n {
                return;
            }
            let p = t.ld(&b.parent, c) as usize;
            let gp = t.ld(&b.parent, p);
            t.int_op(1);
            if gp as usize != p {
                t.st(&b.parent, c, gp);
                t.st(&b.changed, 0, 1);
            }
        });
    }
}

/// Round kernel 5: refresh node labels from the flattened forest.
struct Relabel<'a> {
    b: &'a MstBufs,
}
impl Kernel for Relabel<'_> {
    fn name(&self) -> &'static str {
        "mst_relabel"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= b.n {
                return;
            }
            let c = t.ld(&b.comp, v) as usize;
            let root = t.ld(&b.parent, c);
            t.st(&b.comp, v, root);
        });
    }
}

/// The MST benchmark.
pub struct Mst;

impl Mst {
    fn boruvka(&self, dev: &mut Device, g: &Csr, mult: f64) -> u64 {
        let n = g.n;
        // Unique keys: weight in the high bits, undirected edge id low.
        // Both directed copies of an edge share the undirected id.
        let mut und_id = vec![0u32; g.num_edges()];
        {
            use std::collections::HashMap;
            let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
            let mut next = 0u32;
            for u in 0..n {
                #[allow(clippy::needless_range_loop)]
                for e in g.row_ptr[u] as usize..g.row_ptr[u + 1] as usize {
                    let v = g.col[e] as usize;
                    let key = (u.min(v) as u32, u.max(v) as u32);
                    let id = *ids.entry(key).or_insert_with(|| {
                        let i = next;
                        next += 1;
                        i
                    });
                    und_id[e] = id;
                }
            }
            assert!(next < 1 << 18, "too many undirected edges for key packing");
        }
        let keys: Vec<u32> = g
            .weight
            .iter()
            .zip(&und_id)
            .map(|(&w, &id)| (w << 18) | id)
            .collect();

        let b = MstBufs {
            row_ptr: dev.alloc_from(&g.row_ptr),
            col: dev.alloc_from(&g.col),
            key: dev.alloc_from(&keys),
            weight: dev.alloc_from(&g.weight),
            comp: dev.alloc_from(&(0..n as u32).collect::<Vec<_>>()),
            best_key: dev.alloc_init(n, NONE),
            best_edge: dev.alloc_init(n, NONE),
            parent: dev.alloc_from(&(0..n as u32).collect::<Vec<_>>()),
            total: dev.alloc::<u32>(1),
            changed: dev.alloc::<u32>(1),
            n,
        };
        let grid = (n as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: mult,
        };
        let mut rounds = 0;
        loop {
            dev.fill(&b.best_key, NONE);
            dev.fill(&b.best_edge, NONE);
            dev.fill(&b.changed, 0);
            dev.launch_with(&FindMin { b: &b }, grid, BLOCK, opts);
            dev.launch_with(&ClaimEdge { b: &b }, grid, BLOCK, opts);
            dev.launch_with(&Hook { b: &b }, grid, BLOCK, opts);
            if dev.read_at(&b.changed, 0) == 0 {
                break; // no component found a cross edge: done
            }
            loop {
                dev.fill(&b.changed, 0);
                dev.launch_with(&Jump { b: &b }, grid, BLOCK, opts);
                if dev.read_at(&b.changed, 0) == 0 {
                    break;
                }
            }
            dev.launch_with(&Relabel { b: &b }, grid, BLOCK, opts);
            rounds += 1;
            assert!(rounds < 64, "Boruvka failed to converge");
        }
        dev.read_at(&b.total, 0) as u64
    }
}

impl Benchmark for Mst {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "mst",
            name: "MST",
            suite: Suite::LonestarGpu,
            kernels: 7,
            regular: false,
            description: "Minimum spanning tree via Boruvka edge relaxations",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        road_inputs([176_000.0, 125_000.0, 63_000.0])
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // Boruvka components hook onto each other and pointer-jump
        // concurrently: parent pointers are read while other threads
        // rewrite them, and the `changed` flag is a same-value
        // multi-writer. Union-find converges under any interleaving.
        &["race-global:mst_hook", "race-global:mst_jump"]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let g = road_network(input.n, input.m, input.seed);
        let total = self.boruvka(dev, &g, input.mult);
        let expect = host_msf_weight(&g);
        assert_eq!(total, expect, "MST weight mismatch");
        RunOutput {
            checksum: total as f64,
            items: Some(road_items(input.name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::graphs::random_kway;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn mst_matches_kruskal_on_road_network() {
        Mst.run(&mut device(), &InputSpec::new("t", 16, 16, 0, 1.0));
    }

    #[test]
    fn mst_matches_kruskal_on_larger_grid() {
        Mst.run(&mut device(), &InputSpec::new("t", 28, 20, 0, 1.0));
    }

    #[test]
    fn mst_on_disconnected_forest() {
        // Two disjoint grids: minimum spanning *forest* weight must match.
        let mut dev = device();
        let g1 = road_network(8, 8, 5);
        let g2 = road_network(8, 8, 6);
        let off = g1.n as u32;
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for u in 0..g1.n {
            for (v, w) in g1.neighbors(u) {
                edges.push((u as u32, v, w));
            }
        }
        for u in 0..g2.n {
            for (v, w) in g2.neighbors(u) {
                edges.push((u as u32 + off, v + off, w));
            }
        }
        let merged = Csr::from_edges(g1.n + g2.n, &edges);
        let total = Mst.boruvka(&mut dev, &merged, 1.0);
        assert_eq!(total, host_msf_weight(&merged));
    }

    #[test]
    fn mst_on_random_graph() {
        let mut dev = device();
        let g = random_kway(512, 4, 9);
        // Symmetrize: MST needs an undirected graph.
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for u in 0..g.n {
            for (v, w) in g.neighbors(u) {
                if u as u32 != v {
                    edges.push((u as u32, v, w));
                    edges.push((v, u as u32, w));
                }
            }
        }
        let und = Csr::from_edges(g.n, &edges);
        let total = Mst.boruvka(&mut dev, &und, 1.0);
        assert_eq!(total, host_msf_weight(&und));
    }

    #[test]
    fn boruvka_takes_logarithmic_rounds() {
        let mut dev = device();
        Mst.run(&mut dev, &InputSpec::new("t", 16, 16, 0, 1.0));
        let find_launches = dev
            .stats()
            .iter()
            .filter(|l| l.kernel == "mst_find_min")
            .count();
        assert!(find_launches <= 14, "rounds {find_launches}");
    }

    #[test]
    fn mst_is_irregular_uncoalesced() {
        let mut dev = device();
        Mst.run(&mut dev, &InputSpec::new("t", 16, 16, 0, 1.0));
        let c = dev.total_counters();
        assert!(c.divergence() > 0.15, "divergence {}", c.divergence());
        let unc = 1.0 - c.ideal_transactions / c.transactions;
        assert!(unc > 0.2, "uncoalesced {unc}");
    }
}
