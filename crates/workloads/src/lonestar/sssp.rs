//! SSSP — LonestarGPU single-source shortest paths and its variants
//! (paper §IV.A.1f and Table 3):
//!
//! * `default` — topology-driven Bellman-Ford, one node per thread: every
//!   settled node re-relaxes all of its edges every pass (double-buffered,
//!   hop-synchronous).
//! * `wln` — data-driven node worklist, one node per thread, duplicates
//!   allowed: the worklist stays small, so most passes leave the GPU
//!   almost idle — the paper finds it ~2.4x *slower* than the default.
//! * `wlc` — data-driven, edge-parallel relaxation with worklist dedup
//!   (Merrill's strategy adapted to SSSP): the efficient implementation.

use crate::bench::{BenchSpec, Benchmark, InputSpec, RunOutput, Suite};
use crate::inputs::graphs::{host_sssp, road_network, Csr};
use crate::lonestar::bfs::{road_inputs, road_items, upload_graph, GraphBufs};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 256;
/// Worklist kernels use smaller blocks so modest frontiers still span
/// multiple blocks (and therefore interleave).
const WL_BLOCK: u32 = 64;
const INF: u32 = u32::MAX;
/// Edge-slot fan-out for the `wlc` edge-parallel kernel (road networks
/// have degree <= ~6).
const MAX_DEG: u32 = 8;

/// `default`: hop-synchronous Bellman-Ford; all settled nodes relax all
/// edges every pass.
struct TopoSssp<'a> {
    g: &'a GraphBufs,
    dist_in: DevBuffer<u32>,
    dist_out: DevBuffer<u32>,
}

impl Kernel for TopoSssp<'_> {
    fn name(&self) -> &'static str {
        "sssp_topo"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let g = self.g;
        let (din, dout) = (self.dist_in, self.dist_out);
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= g.n {
                return;
            }
            let dv = t.ld(&din, v);
            let own = t.ld(&dout, v);
            if dv < own {
                t.st(&dout, v, dv);
            }
            if dv == INF {
                return;
            }
            let lo = t.ld(&g.row_ptr, v) as usize;
            let hi = t.ld(&g.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&g.col, e) as usize;
                let wt = t.ld(&g.weight, e);
                t.int_op(3);
                let cand = dv.saturating_add(wt);
                let cur = t.ld(&dout, w);
                if cand < cur {
                    t.st(&dout, w, cand);
                    t.st(&g.changed, 0, 1);
                }
            }
        });
    }
}

/// `wln`: node worklist with duplicates; improved targets are pushed
/// unconditionally.
struct WlnSssp<'a> {
    g: &'a GraphBufs,
    dist: DevBuffer<u32>,
    wl_in: DevBuffer<u32>,
    wl_out: DevBuffer<u32>,
    in_size: u32,
    out_size: DevBuffer<u32>,
}

impl Kernel for WlnSssp<'_> {
    fn name(&self) -> &'static str {
        "sssp_wln"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let g = self.g;
        let (dist, wl_in, wl_out, out_size) = (self.dist, self.wl_in, self.wl_out, self.out_size);
        let in_size = self.in_size;
        blk.for_each_thread(|t| {
            let i = t.gtid();
            if i >= in_size {
                return;
            }
            let v = t.ld(&wl_in, i as usize) as usize;
            let dv = t.ld(&dist, v);
            let lo = t.ld(&g.row_ptr, v) as usize;
            let hi = t.ld(&g.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&g.col, e) as usize;
                let wt = t.ld(&g.weight, e);
                t.int_op(3);
                let cand = dv.saturating_add(wt);
                let old = t.atomic_min_u32(&dist, w, cand);
                if cand < old {
                    // Duplicates allowed: push without dedup.
                    let slot = t.atomic_add_u32(&out_size, 0, 1);
                    t.st(&wl_out, slot as usize, w as u32);
                }
            }
        });
    }
}

/// `wlc`: edge-parallel relaxation (one edge slot per thread) with
/// worklist dedup via an in-worklist flag.
struct WlcSssp<'a> {
    g: &'a GraphBufs,
    dist: DevBuffer<u32>,
    in_wl: DevBuffer<u32>,
    wl_in: DevBuffer<u32>,
    wl_out: DevBuffer<u32>,
    in_size: u32,
    out_size: DevBuffer<u32>,
}

impl Kernel for WlcSssp<'_> {
    fn name(&self) -> &'static str {
        "sssp_wlc"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let g = self.g;
        let (dist, in_wl, wl_in, wl_out, out_size) = (
            self.dist,
            self.in_wl,
            self.wl_in,
            self.wl_out,
            self.out_size,
        );
        let in_size = self.in_size;
        blk.for_each_thread(|t| {
            let i = t.gtid();
            if i >= in_size * MAX_DEG {
                return;
            }
            let v = t.ld(&wl_in, (i / MAX_DEG) as usize) as usize;
            let k = i % MAX_DEG;
            let lo = t.ld(&g.row_ptr, v);
            let hi = t.ld(&g.row_ptr, v + 1);
            t.int_op(2);
            if lo + k >= hi {
                return;
            }
            let e = (lo + k) as usize;
            let dv = t.ld(&dist, v);
            let w = t.ld(&g.col, e) as usize;
            let wt = t.ld(&g.weight, e);
            let cand = dv.saturating_add(wt);
            let old = t.atomic_min_u32(&dist, w, cand);
            if cand < old {
                // Dedup: only enqueue if not already in the out worklist.
                if t.atomic_exch_u32(&in_wl, w, 1) == 0 {
                    let slot = t.atomic_add_u32(&out_size, 0, 1);
                    t.st(&wl_out, slot as usize, w as u32);
                }
            }
        });
    }
}

/// Which SSSP implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsspVariant {
    Default,
    Wln,
    Wlc,
}

impl SsspVariant {
    fn key(&self) -> &'static str {
        match self {
            SsspVariant::Default => "sssp",
            SsspVariant::Wln => "sssp-wln",
            SsspVariant::Wlc => "sssp-wlc",
        }
    }
}

/// The SSSP benchmark (pick a variant; `Default` is the Table-1 program).
pub struct Sssp {
    pub variant: SsspVariant,
}

impl Sssp {
    pub fn new(variant: SsspVariant) -> Self {
        Self { variant }
    }

    fn run_on_graph(&self, dev: &mut Device, g: &Csr, src: usize, mult: f64) -> Vec<u32> {
        let bufs = upload_graph(dev, g);
        let dist = dev.alloc_init::<u32>(g.n, INF);
        dev.write_at(&dist, src, 0);
        let grid = (g.n as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: mult,
        };
        match self.variant {
            SsspVariant::Default => {
                let dist_b = dev.alloc_init::<u32>(g.n, INF);
                dev.write_at(&dist_b, src, 0);
                let mut din = dist;
                let mut dout = dist_b;
                let mut passes = 0u32;
                loop {
                    dev.fill(&bufs.changed, 0);
                    dev.launch_with(
                        &TopoSssp {
                            g: &bufs,
                            dist_in: din,
                            dist_out: dout,
                        },
                        grid,
                        BLOCK,
                        opts,
                    );
                    std::mem::swap(&mut din, &mut dout);
                    passes += 1;
                    assert!(passes < 1_000_000, "SSSP failed to converge");
                    if dev.read_at(&bufs.changed, 0) == 0 {
                        break;
                    }
                }
                dev.read(&din)
            }
            SsspVariant::Wln => {
                let cap = 16 * g.num_edges() + 16;
                let wl_a = dev.alloc::<u32>(cap);
                let wl_b = dev.alloc::<u32>(cap);
                let out_size = dev.alloc::<u32>(1);
                dev.write_at(&wl_a, 0, src as u32);
                let mut in_size = 1u32;
                let mut flip = false;
                while in_size > 0 {
                    dev.fill(&out_size, 0);
                    let (wi, wo) = if flip { (wl_b, wl_a) } else { (wl_a, wl_b) };
                    dev.launch_with(
                        &WlnSssp {
                            g: &bufs,
                            dist,
                            wl_in: wi,
                            wl_out: wo,
                            in_size,
                            out_size,
                        },
                        in_size.div_ceil(WL_BLOCK),
                        WL_BLOCK,
                        opts,
                    );
                    in_size = dev.read_at(&out_size, 0);
                    assert!((in_size as usize) < cap, "wln worklist overflow");
                    flip = !flip;
                }
                dev.read(&dist)
            }
            SsspVariant::Wlc => {
                let cap = g.n + 16;
                let wl_a = dev.alloc::<u32>(cap);
                let wl_b = dev.alloc::<u32>(cap);
                let in_wl = dev.alloc::<u32>(g.n);
                let out_size = dev.alloc::<u32>(1);
                dev.write_at(&wl_a, 0, src as u32);
                let mut in_size = 1u32;
                let mut flip = false;
                while in_size > 0 {
                    dev.fill(&out_size, 0);
                    dev.fill(&in_wl, 0);
                    let (wi, wo) = if flip { (wl_b, wl_a) } else { (wl_a, wl_b) };
                    dev.launch_with(
                        &WlcSssp {
                            g: &bufs,
                            dist,
                            in_wl,
                            wl_in: wi,
                            wl_out: wo,
                            in_size,
                            out_size,
                        },
                        (in_size * MAX_DEG).div_ceil(WL_BLOCK),
                        WL_BLOCK,
                        opts,
                    );
                    in_size = dev.read_at(&out_size, 0);
                    flip = !flip;
                }
                dev.read(&dist)
            }
        }
    }
}

impl Benchmark for Sssp {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: self.variant.key(),
            name: "SSSP",
            suite: Suite::LonestarGpu,
            kernels: 2,
            regular: false,
            description: "Single-source shortest paths on road networks (modified Bellman-Ford)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // All variants process the same paper-scale workload with the same
        // multiplier; their runtime ratios are Table 3's data.
        road_inputs([61_000.0, 48_000.0, 20_000.0])
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // Bellman-Ford relaxations race on distances (read while another
        // thread writes, atomic-min mixed with plain reads) in every
        // variant; monotonically decreasing distances make the fixpoint
        // correct regardless of interleaving.
        match self.variant {
            SsspVariant::Default => &["race-global:sssp_topo"],
            SsspVariant::Wln => &["race-global:sssp_wln"],
            SsspVariant::Wlc => &["race-global:sssp_wlc"],
        }
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let g = road_network(input.n, input.m, input.seed);
        let src = g.n / 2 + input.n / 2;
        let dist = self.run_on_graph(dev, &g, src, input.mult);
        let expect = host_sssp(&g, src);
        assert_eq!(dist, expect, "SSSP ({:?}) wrong distances", self.variant);
        let reachable: u64 = dist.iter().filter(|&&d| d != INF).count() as u64;
        RunOutput {
            checksum: reachable as f64,
            items: Some(road_items(input.name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    fn small_input() -> InputSpec {
        InputSpec::new("t", 20, 20, 0, 1.0)
    }

    #[test]
    fn default_variant_correct() {
        Sssp::new(SsspVariant::Default).run(&mut device(), &small_input());
    }

    #[test]
    fn wln_variant_correct() {
        Sssp::new(SsspVariant::Wln).run(&mut device(), &small_input());
    }

    #[test]
    fn wlc_variant_correct() {
        Sssp::new(SsspVariant::Wlc).run(&mut device(), &small_input());
    }

    #[test]
    fn wlc_does_far_less_work_than_default() {
        let mut d1 = device();
        Sssp::new(SsspVariant::Default).run(&mut d1, &small_input());
        let mut d2 = device();
        Sssp::new(SsspVariant::Wlc).run(&mut d2, &small_input());
        let w1 = d1.total_counters().useful_bytes;
        let w2 = d2.total_counters().useful_bytes;
        assert!(w2 < 0.5 * w1, "wlc {w2} vs default {w1}");
    }

    #[test]
    fn wln_runs_many_low_occupancy_passes() {
        let mut d = device();
        Sssp::new(SsspVariant::Wln).run(&mut d, &small_input());
        // Label-correcting needs at least diameter-many passes, and most
        // worklists are tiny (1-2 blocks): the GPU idles — the reason the
        // paper finds wln strictly worse.
        let launches = d.stats().len();
        assert!(launches > 15, "launches {launches}");
        let small_grids = d.stats().iter().filter(|l| l.grid <= 2).count();
        assert!(small_grids as f64 > 0.4 * launches as f64);
    }

    #[test]
    fn variants_agree_with_each_other() {
        let g = road_network(16, 16, 3);
        let src = 8;
        let a = Sssp::new(SsspVariant::Default).run_on_graph(&mut device(), &g, src, 1.0);
        let b = Sssp::new(SsspVariant::Wln).run_on_graph(&mut device(), &g, src, 1.0);
        let c = Sssp::new(SsspVariant::Wlc).run_on_graph(&mut device(), &g, src, 1.0);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn trajectory_changes_with_clock_config() {
        // The paper's irregularity finding: frequency changes perturb the
        // behaviour of data-driven codes. The worklist-size trajectory of
        // wln must differ across clock configurations once worklists span
        // multiple blocks (co-resident interleaving is config-seeded).
        // A 36x36 grid makes the worklists exceed one block.
        let input = InputSpec::new("t", 36, 36, 0, 1.0);
        let run_at = |clocks| {
            let mut dev = Device::new(DeviceConfig::k20c(clocks, false));
            Sssp::new(SsspVariant::Wln).run(&mut dev, &input);
            dev.stats()
                .iter()
                .map(|l| l.counters.useful_bytes as u64)
                .collect::<Vec<_>>()
        };
        let a = run_at(ClockConfig::k20_default());
        let b = run_at(ClockConfig::k20_324());
        assert_ne!(a, b, "worklist trajectories identical across configs");
    }
}
