//! LonestarGPU: irregular, data-dependent graph and mesh codes. The
//! paper's widest-spread suite — small frequency changes produce
//! super-linear runtime changes here, and uncoalesced traffic makes ECC
//! disproportionately expensive.

pub mod bfs;
pub mod bh;
pub mod dmr;
pub mod mst;
pub mod nsp;
pub mod pta;
pub mod sssp;

pub use bfs::{LBfs, LBfsVariant};
pub use bh::BarnesHut;
pub use dmr::Dmr;
pub use mst::Mst;
pub use nsp::SurveyProp;
pub use pta::Pta;
pub use sssp::{Sssp, SsspVariant};
