//! PTA — LonestarGPU points-to analysis: flow-insensitive,
//! context-insensitive Andersen-style inclusion constraints, solved
//! topology-driven to a fixpoint.
//!
//! Constraint kinds over pointer variables, with points-to sets stored as
//! device bit vectors:
//!
//! * address-of `p ⊇ {a}` (applied once at init),
//! * copy `p ⊇ q`,
//! * load `p ⊇ *q` (union pts(a) into pts(p) for every a ∈ pts(q)),
//! * store `*p ⊇ q` (union pts(q) into pts(a) for every a ∈ pts(p)).
//!
//! The solver kernel sweeps all constraints each pass until nothing
//! changes. Updates go into a *single* set array, so how far information
//! propagates within one pass depends on the (timing-dependent) block
//! interleaving — PTA is the paper's example of a program whose behaviour
//! must be profiled across inputs (recommendation 5), and its 324-MHz
//! outlier (smallest slowdown, largest energy drop).
//!
//! The paper's `vim`/`pine`/`tshark` constraint files are proprietary
//! extractions; we generate synthetic constraint systems with the same
//! kind mix (mostly copies, few loads/stores, ~2 constraints per variable).

use crate::bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
use crate::inputs::util::rng;
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};
use rand::Rng;

const BLOCK: u32 = 128;

/// Constraint kinds, encoded in the device constraint table.
const K_COPY: u32 = 0;
const K_LOAD: u32 = 1;
const K_STORE: u32 = 2;

/// A synthetic constraint system.
#[derive(Debug, Clone)]
pub struct Constraints {
    pub num_vars: usize,
    /// (kind, dst, src) triples; address-of constraints are pre-applied to
    /// the initial sets.
    pub table: Vec<(u32, u32, u32)>,
    /// Initial points-to bits: (var, target).
    pub init: Vec<(u32, u32)>,
}

/// Generate a constraint system shaped like a C program's: every variable
/// gets an address-of or copy chain; a minority are loads/stores through
/// pointers.
pub fn gen_constraints(num_vars: usize, seed: u64) -> Constraints {
    let mut r = rng(seed);
    let mut table = Vec::new();
    let mut init = Vec::new();
    // Address-of targets come from a small pool of allocation sites, as in
    // real programs (keeps points-to sets realistically sparse).
    let sites = (num_vars / 8).max(4);
    for v in 0..num_vars as u32 {
        // ~60% of variables take some address directly.
        if r.gen::<f32>() < 0.6 {
            init.push((v, r.gen_range(0..sites) as u32));
        }
    }
    let n_cons = 2 * num_vars;
    for _ in 0..n_cons {
        let roll: f32 = r.gen();
        let dst = r.gen_range(0..num_vars) as u32;
        let src = r.gen_range(0..num_vars) as u32;
        let kind = if roll < 0.62 {
            K_COPY
        } else if roll < 0.81 {
            K_LOAD
        } else {
            K_STORE
        };
        table.push((kind, dst, src));
    }
    Constraints {
        num_vars,
        table,
        init,
    }
}

/// Host fixpoint solver (reference).
pub fn host_solve(c: &Constraints) -> Vec<Vec<u32>> {
    let words = c.num_vars.div_ceil(32);
    let mut pts = vec![vec![0u32; words]; c.num_vars];
    for &(v, tgt) in &c.init {
        pts[v as usize][tgt as usize / 32] |= 1 << (tgt % 32);
    }
    loop {
        let mut changed = false;
        for &(kind, dst, src) in &c.table {
            match kind {
                K_COPY => changed |= union_into(&mut pts, dst as usize, src as usize),
                K_LOAD => {
                    let srcs = set_bits(&pts[src as usize]);
                    for a in srcs {
                        changed |= union_into(&mut pts, dst as usize, a as usize);
                    }
                }
                _ => {
                    let dsts = set_bits(&pts[dst as usize]);
                    for a in dsts {
                        changed |= union_into(&mut pts, a as usize, src as usize);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    pts
}

fn union_into(pts: &mut [Vec<u32>], dst: usize, src: usize) -> bool {
    if dst == src {
        return false;
    }
    let mut changed = false;
    for w in 0..pts[dst].len() {
        let nv = pts[dst][w] | pts[src][w];
        if nv != pts[dst][w] {
            pts[dst][w] = nv;
            changed = true;
        }
    }
    changed
}

fn set_bits(words: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros();
            out.push((wi as u32) * 32 + b);
            bits &= bits - 1;
        }
    }
    out
}

struct PtaBufs {
    kind: DevBuffer<u32>,
    dst: DevBuffer<u32>,
    src: DevBuffer<u32>,
    /// Flattened bit matrix: `pts[v * words + w]`.
    pts: DevBuffer<u32>,
    changed: DevBuffer<u32>,
    n_cons: usize,
    words: usize,
}

/// The solver sweep: one thread per constraint.
struct Solve<'a> {
    b: &'a PtaBufs,
}

impl Kernel for Solve<'_> {
    fn name(&self) -> &'static str {
        "pta_solve"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        let words = b.words;
        blk.for_each_thread(|t| {
            let i = t.gtid() as usize;
            if i >= b.n_cons {
                return;
            }
            let kind = t.ld(&b.kind, i);
            let dst = t.ld(&b.dst, i) as usize;
            let src = t.ld(&b.src, i) as usize;
            t.int_op(3);
            // Union src's set (or sets reached through it) into dst's.
            let union_pair = |t: &mut kepler_sim::ThreadCtx, d: usize, s: usize| {
                if d == s {
                    return;
                }
                for w in 0..words {
                    let sv = t.ld(&b.pts, s * words + w);
                    if sv == 0 {
                        t.int_op(1);
                        continue;
                    }
                    let dv = t.ld(&b.pts, d * words + w);
                    t.int_op(2);
                    if dv | sv != dv {
                        t.st(&b.pts, d * words + w, dv | sv);
                        t.st(&b.changed, 0, 1);
                    }
                }
            };
            match kind {
                K_COPY => union_pair(t, dst, src),
                K_LOAD => {
                    // dst ⊇ *src: walk src's set bits.
                    for w in 0..words {
                        let mut bits = t.ld(&b.pts, src * words + w);
                        t.int_op(1);
                        while bits != 0 {
                            let a = (w as u32) * 32 + bits.trailing_zeros();
                            bits &= bits - 1;
                            t.int_op(2);
                            union_pair(t, dst, a as usize);
                        }
                    }
                }
                _ => {
                    // *dst ⊇ src: walk dst's set bits.
                    for w in 0..words {
                        let mut bits = t.ld(&b.pts, dst * words + w);
                        t.int_op(1);
                        while bits != 0 {
                            let a = (w as u32) * 32 + bits.trailing_zeros();
                            bits &= bits - 1;
                            t.int_op(2);
                            union_pair(t, a as usize, src);
                        }
                    }
                }
            }
        });
    }
}

/// The PTA benchmark.
pub struct Pta;

impl Pta {
    fn solve(&self, dev: &mut Device, c: &Constraints, mult: f64) -> Vec<u32> {
        let words = c.num_vars.div_ceil(32);
        let mut init = vec![0u32; c.num_vars * words];
        for &(v, tgt) in &c.init {
            init[v as usize * words + tgt as usize / 32] |= 1 << (tgt % 32);
        }
        let b = PtaBufs {
            kind: dev.alloc_from(&c.table.iter().map(|x| x.0).collect::<Vec<_>>()),
            dst: dev.alloc_from(&c.table.iter().map(|x| x.1).collect::<Vec<_>>()),
            src: dev.alloc_from(&c.table.iter().map(|x| x.2).collect::<Vec<_>>()),
            pts: dev.alloc_from(&init),
            changed: dev.alloc::<u32>(1),
            n_cons: c.table.len(),
            words,
        };
        let grid = (c.table.len() as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: mult,
        };
        let mut passes = 0;
        loop {
            dev.fill(&b.changed, 0);
            dev.launch_with(&Solve { b: &b }, grid, BLOCK, opts);
            passes += 1;
            assert!(passes < 10_000, "PTA failed to converge");
            if dev.read_at(&b.changed, 0) == 0 {
                break;
            }
        }
        dev.read(&b.pts)
    }
}

impl Benchmark for Pta {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "pta",
            name: "PTA",
            suite: Suite::LonestarGpu,
            kernels: 40,
            regular: false,
            description: "Andersen-style points-to analysis (inclusion constraints)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: vim (small), pine (medium), tshark (large).
        vec![
            InputSpec::new("vim (small)", 768, 0, 0, 1_100.0),
            InputSpec::new("pine (medium)", 1024, 0, 0, 600.0),
            InputSpec::new("tshark (large)", 1280, 0, 0, 640.0),
        ]
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // Constraint propagation ORs points-to bitsets that other threads
        // are reading in the same pass, and the `changed` flag is a
        // same-value multi-writer. Monotonic set growth keeps the fixpoint
        // correct; how far updates travel per pass is timing-dependent by
        // design.
        &["race-global:pta_solve"]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let c = gen_constraints(input.n, input.seed);
        let pts = self.solve(dev, &c, input.mult);
        let expect = host_solve(&c);
        let words = input.n.div_ceil(32);
        for v in 0..input.n {
            assert_eq!(
                &pts[v * words..(v + 1) * words],
                expect[v].as_slice(),
                "PTA fixpoint mismatch at var {v}"
            );
        }
        let total_bits: u64 = pts.iter().map(|w| w.count_ones() as u64).sum();
        RunOutput {
            checksum: total_bits as f64,
            items: Some(ItemCounts {
                vertices: input.n as u64,
                edges: c.table.len() as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn tiny_manual_system() {
        // a = &x; b = a; c = *b (x's set); *a = b (into x).
        let c = Constraints {
            num_vars: 4,
            table: vec![(K_COPY, 1, 0), (K_LOAD, 2, 1), (K_STORE, 0, 1)],
            init: vec![(0, 3)], // a -> {x=3}
        };
        let pts = host_solve(&c);
        // b = a -> {3}; *a ⊇ b: pts(3) ⊇ {3}; c = *b = pts(3) = {3}.
        assert_eq!(set_bits(&pts[1]), vec![3]);
        assert_eq!(set_bits(&pts[3]), vec![3]);
        assert_eq!(set_bits(&pts[2]), vec![3]);
    }

    #[test]
    fn device_matches_host_small() {
        Pta.run(&mut device(), &InputSpec::new("t", 96, 0, 0, 1.0));
    }

    #[test]
    fn device_matches_host_medium() {
        Pta.run(&mut device(), &InputSpec::new("t", 256, 0, 0, 1.0));
    }

    #[test]
    fn fixpoint_is_order_independent() {
        // Different configs interleave differently, but the fixpoint is
        // unique: checksums must agree.
        let input = InputSpec::new("t", 128, 0, 0, 1.0);
        let a = Pta
            .run(
                &mut Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false)),
                &input,
            )
            .checksum;
        let b = Pta
            .run(
                &mut Device::new(DeviceConfig::k20c(ClockConfig::k20_324(), false)),
                &input,
            )
            .checksum;
        assert_eq!(a, b);
    }

    #[test]
    fn convergence_takes_multiple_data_dependent_passes() {
        let mut d1 = device();
        Pta.run(&mut d1, &InputSpec::new("t", 96, 0, 0, 1.0));
        // Transitive propagation cannot finish in one sweep.
        assert!(d1.stats().len() >= 3, "passes {}", d1.stats().len());
        // And more work happens per pass on larger constraint systems.
        let mut d2 = device();
        Pta.run(&mut d2, &InputSpec::new("t2", 256, 7, 0, 1.0));
        let w1 = d1.total_counters().useful_bytes / d1.stats().len() as f64;
        let w2 = d2.total_counters().useful_bytes / d2.stats().len() as f64;
        assert!(w2 > 2.0 * w1);
    }

    #[test]
    fn sets_grow_transitively() {
        let c = gen_constraints(128, 1);
        let pts = host_solve(&c);
        let total: usize = pts.iter().map(|v| set_bits(v).len()).sum();
        let init = c.init.len();
        assert!(total > 2 * init, "total {total} vs init {init}");
    }
}
