//! L-BFS — LonestarGPU breadth-first search and its implementation
//! variants (paper §IV.A.1b and Table 3):
//!
//! * `default` — topology-driven, one node per thread: every pass scans all
//!   nodes; only nodes at the current level relax their neighbors, and the
//!   `level == current` guard makes propagation level-synchronous, so the
//!   pass count equals the graph's eccentricity. On high-diameter road
//!   networks that is thousands of scans over the full node array — the
//!   "unnecessary computations" the paper warns about.
//! * `atomic` — topology-driven with `atomicMin`: every reached node
//!   re-relaxes each pass, but updates are visible within the pass, so a
//!   pass propagates as far as the block-dispatch order allows — far fewer
//!   passes (and genuinely timing-dependent).
//! * `wla` — one flag per node: only flagged nodes do edge work, with
//!   in/out flag arrays (level-synchronous). Much lower activity per pass.
//! * `wlw` — data-driven node worklist (one node per thread).
//! * `wlc` — data-driven edge worklist using Merrill's strategy (one edge
//!   per thread).
//!
//! The paper could not measure `wlw`/`wlc`: they finish too quickly for the
//! power sensor. Our reproduction keeps them for the same reason — they
//! trip the K20Power insufficient-samples check.

use crate::bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
use crate::inputs::graphs::{host_bfs, road_network, Csr};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 256;
/// Worklist kernels use smaller blocks so modest frontiers still span
/// multiple blocks (and therefore interleave).
const WL_BLOCK: u32 = 64;
const NO_LEVEL: u32 = u32::MAX;

/// Device-resident CSR graph plus BFS state.
pub(crate) struct GraphBufs {
    pub row_ptr: DevBuffer<u32>,
    pub col: DevBuffer<u32>,
    pub weight: DevBuffer<u32>,
    pub level: DevBuffer<u32>,
    pub changed: DevBuffer<u32>,
    pub n: usize,
}

pub(crate) fn upload_graph(dev: &mut Device, g: &Csr) -> GraphBufs {
    GraphBufs {
        row_ptr: dev.alloc_from(&g.row_ptr),
        col: dev.alloc_from(&g.col),
        weight: dev.alloc_from(&g.weight),
        level: dev.alloc_init(g.n, NO_LEVEL),
        changed: dev.alloc::<u32>(1),
        n: g.n,
    }
}

/// Road-map input deck shared by the Lonestar graph codes. `n`/`m` are the
/// grid width/height of the synthetic road network; each entry gets its own
/// calibrated work multiplier.
pub(crate) fn road_inputs(mults: [f64; 3]) -> Vec<InputSpec> {
    // Great Lakes (2.7m nodes / 7m edges), Western USA (6m/15m),
    // entire USA (24m/58m).
    vec![
        InputSpec::new("Great Lakes", 48, 48, 0, mults[0]),
        InputSpec::new("Western USA", 64, 64, 0, mults[1]),
        InputSpec::new("entire USA", 88, 88, 0, mults[2]),
    ]
}

/// Paper-scale item counts for the three road maps (Table 4 normalizes by
/// these).
pub(crate) fn road_items(name: &str) -> ItemCounts {
    match name {
        "Great Lakes" => ItemCounts {
            vertices: 2_700_000,
            edges: 7_000_000,
        },
        "Western USA" => ItemCounts {
            vertices: 6_000_000,
            edges: 15_000_000,
        },
        _ => ItemCounts {
            vertices: 24_000_000,
            edges: 58_000_000,
        },
    }
}

// ---------------------------------------------------------------- kernels

/// `default`: topology-driven Bellman-Ford over levels. *Every* settled
/// node re-relaxes all of its edges every pass, reading from `level_in`
/// and min-writing into `level_out` (level-synchronous double buffering) —
/// the "many unnecessary computations" of topology-driven traversal the
/// paper's recommendation 2 calls out.
struct TopoKernel<'a> {
    g: &'a GraphBufs,
    level_in: DevBuffer<u32>,
    level_out: DevBuffer<u32>,
}

impl Kernel for TopoKernel<'_> {
    fn name(&self) -> &'static str {
        "lbfs_topo"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let g = self.g;
        let (lin, lout) = (self.level_in, self.level_out);
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= g.n {
                return;
            }
            let lv = t.ld(&lin, v);
            // Refresh our own slot in the out array (it holds the value
            // from two passes ago; levels only decrease, so min is safe).
            let own = t.ld(&lout, v);
            if lv < own {
                t.st(&lout, v, lv);
            }
            if lv == NO_LEVEL {
                return;
            }
            let lo = t.ld(&g.row_ptr, v) as usize;
            let hi = t.ld(&g.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&g.col, e) as usize;
                t.int_op(2);
                let cur = t.ld(&lout, w);
                if lv + 1 < cur {
                    t.st(&lout, w, lv + 1);
                    t.st(&g.changed, 0, 1);
                }
            }
        });
    }
}

/// `atomic`: dirty-marked nodes relax via `atomicMin`; a *single* dirty
/// array means updates are visible within the pass, so propagation travels
/// as far per pass as the (timing-dependent) block interleaving allows.
struct AtomicKernel<'a> {
    g: &'a GraphBufs,
    dirty: DevBuffer<u32>,
}

impl Kernel for AtomicKernel<'_> {
    fn name(&self) -> &'static str {
        "lbfs_atomic"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let g = self.g;
        let dirty = self.dirty;
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= g.n {
                return;
            }
            if t.atomic_exch_u32(&dirty, v, 0) == 0 {
                return;
            }
            let lv = t.ld(&g.level, v);
            let lo = t.ld(&g.row_ptr, v) as usize;
            let hi = t.ld(&g.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&g.col, e) as usize;
                t.int_op(2);
                let old = t.atomic_min_u32(&g.level, w, lv + 1);
                if old > lv + 1 {
                    t.st(&dirty, w, 1);
                    t.st(&g.changed, 0, 1);
                }
            }
        });
    }
}

/// `wla`: in/out flag arrays; only flagged nodes do edge work.
struct WlaKernel<'a> {
    g: &'a GraphBufs,
    flag_in: DevBuffer<u32>,
    flag_out: DevBuffer<u32>,
}

impl Kernel for WlaKernel<'_> {
    fn name(&self) -> &'static str {
        "lbfs_wla"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let g = self.g;
        let (fin, fout) = (self.flag_in, self.flag_out);
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= g.n {
                return;
            }
            if t.ld(&fin, v) == 0 {
                return;
            }
            let lv = t.ld(&g.level, v);
            let lo = t.ld(&g.row_ptr, v) as usize;
            let hi = t.ld(&g.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&g.col, e) as usize;
                t.int_op(2);
                if t.ld(&g.level, w) > lv + 1 {
                    t.st(&g.level, w, lv + 1);
                    t.st(&fout, w, 1);
                    t.st(&g.changed, 0, 1);
                }
            }
        });
    }
}

/// `wlw`: data-driven node worklist (one node per thread).
struct WlwKernel<'a> {
    g: &'a GraphBufs,
    wl_in: DevBuffer<u32>,
    wl_out: DevBuffer<u32>,
    in_size: u32,
    out_size: DevBuffer<u32>,
}

impl Kernel for WlwKernel<'_> {
    fn name(&self) -> &'static str {
        "lbfs_wlw"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let g = self.g;
        let (wl_in, wl_out, out_size) = (self.wl_in, self.wl_out, self.out_size);
        let in_size = self.in_size;
        blk.for_each_thread(|t| {
            let i = t.gtid();
            if i >= in_size {
                return;
            }
            let v = t.ld(&wl_in, i as usize) as usize;
            let lv = t.ld(&g.level, v);
            let lo = t.ld(&g.row_ptr, v) as usize;
            let hi = t.ld(&g.row_ptr, v + 1) as usize;
            for e in lo..hi {
                let w = t.ld(&g.col, e) as usize;
                t.int_op(2);
                // First writer claims the node.
                if t.atomic_cas_u32(&g.level, w, NO_LEVEL, lv + 1) == NO_LEVEL {
                    let slot = t.atomic_add_u32(&out_size, 0, 1);
                    t.st(&wl_out, slot as usize, w as u32);
                }
            }
        });
    }
}

/// `wlc`: data-driven edge worklist (one edge per thread, Merrill-style
/// fine-grained expansion).
struct WlcKernel<'a> {
    g: &'a GraphBufs,
    wl_in: DevBuffer<u32>,
    wl_out: DevBuffer<u32>,
    in_size: u32,
    out_size: DevBuffer<u32>,
}

impl Kernel for WlcKernel<'_> {
    fn name(&self) -> &'static str {
        "lbfs_wlc"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let g = self.g;
        let (wl_in, wl_out, out_size) = (self.wl_in, self.wl_out, self.out_size);
        let in_size = self.in_size;
        blk.for_each_thread(|t| {
            let i = t.gtid();
            if i >= in_size {
                return;
            }
            // The worklist holds edge indices; resolve the destination.
            let e = t.ld(&wl_in, i as usize) as usize;
            let w = t.ld(&g.col, e) as usize;
            let my_level = t.ld(&g.changed, 0); // current level counter
            t.int_op(2);
            if t.atomic_cas_u32(&g.level, w, NO_LEVEL, my_level) == NO_LEVEL {
                // Claimed: enqueue all of w's out-edges.
                let lo = t.ld(&g.row_ptr, w) as usize;
                let hi = t.ld(&g.row_ptr, w + 1) as usize;
                if hi > lo {
                    let base = t.atomic_add_u32(&out_size, 0, (hi - lo) as u32);
                    for (k, edge) in (lo..hi).enumerate() {
                        t.st(&wl_out, base as usize + k, edge as u32);
                    }
                }
            }
        });
    }
}

// ---------------------------------------------------------------- driver

/// Which L-BFS implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBfsVariant {
    Default,
    Atomic,
    Wla,
    Wlw,
    Wlc,
}

impl LBfsVariant {
    fn key(&self) -> &'static str {
        match self {
            LBfsVariant::Default => "lbfs",
            LBfsVariant::Atomic => "lbfs-atomic",
            LBfsVariant::Wla => "lbfs-wla",
            LBfsVariant::Wlw => "lbfs-wlw",
            LBfsVariant::Wlc => "lbfs-wlc",
        }
    }
}

/// The L-BFS benchmark (pick a variant; `Default` is the Table-1 program).
pub struct LBfs {
    pub variant: LBfsVariant,
}

impl LBfs {
    pub fn new(variant: LBfsVariant) -> Self {
        Self { variant }
    }

    fn run_on_graph(&self, dev: &mut Device, g: &Csr, src: usize, mult: f64) -> Vec<u32> {
        let bufs = upload_graph(dev, g);
        dev.write_at(&bufs.level, src, 0);
        let grid = (g.n as u32).div_ceil(BLOCK);
        let opts = LaunchOpts {
            work_multiplier: mult,
        };
        match self.variant {
            LBfsVariant::Default => {
                let level_b = dev.alloc_init::<u32>(g.n, NO_LEVEL);
                dev.write_at(&level_b, src, 0);
                let mut cur_in = bufs.level;
                let mut cur_out = level_b;
                let mut passes = 0u32;
                loop {
                    dev.fill(&bufs.changed, 0);
                    dev.launch_with(
                        &TopoKernel {
                            g: &bufs,
                            level_in: cur_in,
                            level_out: cur_out,
                        },
                        grid,
                        BLOCK,
                        opts,
                    );
                    std::mem::swap(&mut cur_in, &mut cur_out);
                    passes += 1;
                    assert!(passes < 100_000, "BFS failed to converge");
                    if dev.read_at(&bufs.changed, 0) == 0 {
                        break;
                    }
                }
                return dev.read(&cur_in);
            }
            LBfsVariant::Atomic => {
                let dirty = dev.alloc::<u32>(g.n);
                dev.write_at(&dirty, src, 1);
                loop {
                    dev.fill(&bufs.changed, 0);
                    dev.launch_with(&AtomicKernel { g: &bufs, dirty }, grid, BLOCK, opts);
                    if dev.read_at(&bufs.changed, 0) == 0 {
                        break;
                    }
                }
            }
            LBfsVariant::Wla => {
                // Every node's flag is read each pass: zero them explicitly
                // (the reference memsets) instead of reading fresh memory.
                let flag_a = dev.alloc_init::<u32>(g.n, 0);
                let flag_b = dev.alloc_init::<u32>(g.n, 0);
                dev.write_at(&flag_a, src, 1);
                let mut flip = false;
                loop {
                    dev.fill(&bufs.changed, 0);
                    let (fin, fout) = if flip {
                        (flag_b, flag_a)
                    } else {
                        (flag_a, flag_b)
                    };
                    dev.launch_with(
                        &WlaKernel {
                            g: &bufs,
                            flag_in: fin,
                            flag_out: fout,
                        },
                        grid,
                        BLOCK,
                        opts,
                    );
                    dev.fill(&fin, 0);
                    flip = !flip;
                    if dev.read_at(&bufs.changed, 0) == 0 {
                        break;
                    }
                }
            }
            LBfsVariant::Wlw => {
                let wl_a = dev.alloc::<u32>(g.n + 1);
                let wl_b = dev.alloc::<u32>(g.n + 1);
                let out_size = dev.alloc::<u32>(1);
                dev.write_at(&wl_a, 0, src as u32);
                let mut in_size = 1u32;
                let mut flip = false;
                while in_size > 0 {
                    dev.fill(&out_size, 0);
                    let (wi, wo) = if flip { (wl_b, wl_a) } else { (wl_a, wl_b) };
                    dev.launch_with(
                        &WlwKernel {
                            g: &bufs,
                            wl_in: wi,
                            wl_out: wo,
                            in_size,
                            out_size,
                        },
                        in_size.div_ceil(WL_BLOCK),
                        WL_BLOCK,
                        opts,
                    );
                    in_size = dev.read_at(&out_size, 0);
                    flip = !flip;
                }
            }
            LBfsVariant::Wlc => {
                let cap = g.num_edges() + 1;
                let wl_a = dev.alloc::<u32>(cap);
                let wl_b = dev.alloc::<u32>(cap);
                let out_size = dev.alloc::<u32>(1);
                // Seed with the source's out-edges; `changed` holds the
                // level counter for newly claimed nodes.
                let lo = g.row_ptr[src] as usize;
                let hi = g.row_ptr[src + 1] as usize;
                let seed: Vec<u32> = (lo..hi).map(|e| e as u32).collect();
                for (k, e) in seed.iter().enumerate() {
                    dev.write_at(&wl_a, k, *e);
                }
                let mut in_size = seed.len() as u32;
                let mut level = 1u32;
                let mut flip = false;
                while in_size > 0 {
                    dev.fill(&out_size, 0);
                    dev.fill(&bufs.changed, level);
                    let (wi, wo) = if flip { (wl_b, wl_a) } else { (wl_a, wl_b) };
                    dev.launch_with(
                        &WlcKernel {
                            g: &bufs,
                            wl_in: wi,
                            wl_out: wo,
                            in_size,
                            out_size,
                        },
                        in_size.div_ceil(WL_BLOCK),
                        WL_BLOCK,
                        opts,
                    );
                    in_size = dev.read_at(&out_size, 0);
                    level += 1;
                    flip = !flip;
                }
            }
        }
        dev.read(&bufs.level)
    }
}

impl Benchmark for LBfs {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: self.variant.key(),
            name: "L-BFS",
            suite: Suite::LonestarGpu,
            kernels: 5,
            regular: false,
            description: "Breadth-first search on road networks (LonestarGPU)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        match self.variant {
            // Same paper-scale workload, same multiplier — the active
            // runtime ratios between these implementations ARE Table 3.
            LBfsVariant::Default | LBfsVariant::Atomic | LBfsVariant::Wla => {
                road_inputs([134_000.0, 102_000.0, 61_000.0])
            }
            // The data-driven variants' total work scales with the edge
            // count, not nodes x diameter, so their paper-scale multiplier
            // is orders of magnitude smaller — they finish before the
            // sensor collects enough samples, exactly as in the paper.
            LBfsVariant::Wlw | LBfsVariant::Wlc => road_inputs([400.0, 700.0, 1000.0]),
        }
    }

    fn sanitizer_allowlist(&self) -> &'static [&'static str] {
        // Every L-BFS variant relaxes node levels without locks: threads
        // read a neighbour's level while others write it, and the shared
        // `changed` flag is a same-value multi-writer. Monotonic level
        // updates make the result correct anyway — the races are the
        // algorithm. (The `wlc` variant is race-free: it claims nodes with
        // CAS and pushes to the worklist through atomics only.)
        match self.variant {
            LBfsVariant::Default => &["race-global:lbfs_topo"],
            LBfsVariant::Atomic => &["race-global:lbfs_atomic"],
            LBfsVariant::Wla => &["race-global:lbfs_wla"],
            LBfsVariant::Wlw => &["race-global:lbfs_wlw"],
            LBfsVariant::Wlc => &[],
        }
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let g = road_network(input.n, input.m, input.seed);
        let src = g.n / 2 + input.n / 2;
        let levels = self.run_on_graph(dev, &g, src, input.mult);
        // Every variant must compute exact BFS levels.
        let expect = host_bfs(&g, src);
        assert_eq!(levels, expect, "L-BFS ({:?}) wrong levels", self.variant);
        let reached = levels.iter().filter(|&&l| l != NO_LEVEL).count();
        RunOutput {
            checksum: reached as f64,
            items: Some(road_items(input.name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    fn small_input() -> InputSpec {
        InputSpec::new("t", 24, 24, 0, 1.0)
    }

    #[test]
    fn default_variant_correct() {
        LBfs::new(LBfsVariant::Default).run(&mut device(), &small_input());
    }

    #[test]
    fn atomic_variant_correct() {
        LBfs::new(LBfsVariant::Atomic).run(&mut device(), &small_input());
    }

    #[test]
    fn wla_variant_correct() {
        LBfs::new(LBfsVariant::Wla).run(&mut device(), &small_input());
    }

    #[test]
    fn wlw_variant_correct() {
        LBfs::new(LBfsVariant::Wlw).run(&mut device(), &small_input());
    }

    #[test]
    fn wlc_variant_correct() {
        LBfs::new(LBfsVariant::Wlc).run(&mut device(), &small_input());
    }

    #[test]
    fn atomic_does_less_work_than_default() {
        // The default is topology-driven Bellman-Ford: all settled nodes
        // re-relax every pass. The atomic variant only touches dirty nodes.
        let mut d1 = device();
        LBfs::new(LBfsVariant::Default).run(&mut d1, &small_input());
        let mut d2 = device();
        LBfs::new(LBfsVariant::Atomic).run(&mut d2, &small_input());
        assert!(d2.stats().len() <= d1.stats().len());
        let work1 = d1.total_counters().useful_bytes;
        let work2 = d2.total_counters().useful_bytes;
        assert!(work2 < 0.5 * work1, "atomic {work2} vs default {work1}");
    }

    #[test]
    fn atomic_is_substantially_faster_than_default() {
        // Table 3: atomic/default active-runtime ratio ~0.3.
        let mut d1 = device();
        LBfs::new(LBfsVariant::Default).run(&mut d1, &small_input());
        let mut d2 = device();
        LBfs::new(LBfsVariant::Atomic).run(&mut d2, &small_input());
        let ratio = d2.kernel_time() / d1.kernel_time();
        assert!(ratio < 0.7, "time ratio {ratio}");
    }

    #[test]
    fn worklist_variants_do_least_work() {
        let mut d1 = device();
        LBfs::new(LBfsVariant::Default).run(&mut d1, &small_input());
        let mut d2 = device();
        LBfs::new(LBfsVariant::Wlw).run(&mut d2, &small_input());
        // On this small grid the default's per-pass node scans dominate
        // only mildly; at road-map diameters the gap grows with D.
        let full = d1.total_counters().useful_bytes;
        let wl = d2.total_counters().useful_bytes;
        assert!(wl < full / 2.0, "wlw {wl} vs default {full}");
    }

    #[test]
    fn bfs_traffic_is_substantially_uncoalesced() {
        let mut dev = device();
        LBfs::new(LBfsVariant::Default).run(&mut dev, &small_input());
        let c = dev.total_counters();
        let unc = 1.0 - c.ideal_transactions / c.transactions;
        assert!(unc > 0.2, "uncoalesced fraction {unc}");
    }

    #[test]
    fn variant_keys_distinct() {
        let keys: Vec<_> = [
            LBfsVariant::Default,
            LBfsVariant::Atomic,
            LBfsVariant::Wla,
            LBfsVariant::Wlw,
            LBfsVariant::Wlc,
        ]
        .iter()
        .map(|v| v.key())
        .collect();
        let mut dedup = keys.clone();
        dedup.dedup();
        assert_eq!(keys.len(), dedup.len());
    }
}
