//! NSP — LonestarGPU survey propagation, a heuristic SAT solver based on
//! Bayesian inference over the factor graph of a Boolean formula.
//!
//! The formula is a bipartite factor graph (clauses vs variables); each
//! clause→variable edge carries a survey η. One iteration: (1) every
//! variable aggregates the surveys of its other clauses into polarity
//! products, (2) every edge recomputes η from those products, (3) a
//! reduction finds the maximum change. Iterate until the surveys converge.
//! Synchronous (double-buffered) updates keep the fixpoint reproducible.
//!
//! Variable degrees vary wildly in random k-SAT, so the per-edge loops
//! diverge — NSP is irregular despite its floating-point-heavy inner loop.

use crate::bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
use crate::inputs::sat::{random_ksat, Formula};
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 128;
const TOL: f32 = 1e-3;
const MAX_ITERS: usize = 120;

/// Flattened factor graph + SP state.
#[derive(Clone, Copy)]
struct SpBufs {
    /// Clause -> edge range (CSR over clause side).
    cl_ptr: DevBuffer<u32>,
    /// Edge -> variable id.
    edge_var: DevBuffer<u32>,
    /// Edge -> 1 if the literal is negated.
    edge_neg: DevBuffer<u32>,
    /// Variable -> edge range (CSR over variable side).
    var_ptr: DevBuffer<u32>,
    var_edges: DevBuffer<u32>,
    /// Surveys, double buffered.
    eta_in: DevBuffer<f32>,
    eta_out: DevBuffer<f32>,
    /// Per-variable polarity products: Π(1-η) over positive / negative
    /// occurrences.
    prod_pos: DevBuffer<f32>,
    prod_neg: DevBuffer<f32>,
    /// Max |Δη| this iteration (fixed-point encoded for atomicMax).
    max_delta: DevBuffer<u32>,
    n_clauses: usize,
    n_vars: usize,
}

/// Kernel 1: per-variable polarity products.
struct VarProducts<'a> {
    b: &'a SpBufs,
}
impl Kernel for VarProducts<'_> {
    fn name(&self) -> &'static str {
        "nsp_var_products"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let v = t.gtid() as usize;
            if v >= b.n_vars {
                return;
            }
            let lo = t.ld(&b.var_ptr, v) as usize;
            let hi = t.ld(&b.var_ptr, v + 1) as usize;
            let (mut pp, mut pn) = (1.0f32, 1.0f32);
            for k in lo..hi {
                let e = t.ld(&b.var_edges, k) as usize;
                let eta = t.ld(&b.eta_in, e);
                let neg = t.ld(&b.edge_neg, e);
                t.fp32_mul(2);
                if neg == 0 {
                    pp *= 1.0 - eta;
                } else {
                    pn *= 1.0 - eta;
                }
            }
            t.st(&b.prod_pos, v, pp);
            t.st(&b.prod_neg, v, pn);
        });
    }
}

/// Kernel 2: per-clause survey update.
struct EdgeUpdate<'a> {
    b: &'a SpBufs,
}
impl Kernel for EdgeUpdate<'_> {
    fn name(&self) -> &'static str {
        "nsp_edge_update"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        blk.for_each_thread(|t| {
            let c = t.gtid() as usize;
            if c >= b.n_clauses {
                return;
            }
            let lo = t.ld(&b.cl_ptr, c) as usize;
            let hi = t.ld(&b.cl_ptr, c + 1) as usize;
            for e in lo..hi {
                // η_{c→v} = Π_{j∈c, j≠v} P_j^u, where P_j^u is the
                // probability that literal j is "unsatisfying-constrained".
                let mut eta = 1.0f32;
                for e2 in lo..hi {
                    if e2 == e {
                        continue;
                    }
                    let j = t.ld(&b.edge_var, e2) as usize;
                    let neg = t.ld(&b.edge_neg, e2);
                    let eta_in = t.ld(&b.eta_in, e2);
                    let pp = t.ld(&b.prod_pos, j);
                    let pn = t.ld(&b.prod_neg, j);
                    t.fp32_mul(4);
                    t.fp32_add(3);
                    t.sfu(1);
                    // Cavity products: divide our own survey back out of
                    // the same-polarity product.
                    let denom = (1.0 - eta_in).max(1e-9);
                    let (same, other) = if neg == 0 { (pp, pn) } else { (pn, pp) };
                    let pi_u = (1.0 - same / denom) * other;
                    let pi_s = (1.0 - other) * (same / denom);
                    let pi_0 = (same / denom) * other;
                    let total = (pi_u + pi_s + pi_0).max(1e-9);
                    eta *= (pi_u / total).clamp(0.0, 1.0);
                }
                let old = t.ld(&b.eta_in, e);
                let delta = (eta - old).abs();
                t.fp32_add(2);
                // Fixed-point max for the convergence reduction.
                t.atomic_max_u32(&b.max_delta, 0, (delta * 1e6) as u32);
                t.st(&b.eta_out, e, eta);
            }
        });
    }
}

/// The NSP benchmark.
pub struct SurveyProp;

/// Host reference: the exact same synchronous update (the fixpoint of a
/// synchronous iteration is deterministic, so device results must match).
pub fn host_sp(f: &Formula, iters: usize) -> Vec<f32> {
    let n_edges: usize = f.num_edges();
    let mut eta = vec![0.5f32; n_edges];
    let mut eta_next = vec![0.5f32; n_edges];
    // Build the same CSR layouts.
    let mut cl_ptr = vec![0u32; f.clauses.len() + 1];
    for (c, cl) in f.clauses.iter().enumerate() {
        cl_ptr[c + 1] = cl_ptr[c] + cl.len() as u32;
    }
    let edge_var: Vec<u32> = f
        .clauses
        .iter()
        .flat_map(|cl| cl.iter().map(|&l| l.unsigned_abs() - 1))
        .collect();
    let edge_neg: Vec<u32> = f
        .clauses
        .iter()
        .flat_map(|cl| cl.iter().map(|&l| (l < 0) as u32))
        .collect();
    let mut var_edges: Vec<Vec<u32>> = vec![Vec::new(); f.num_vars];
    for (e, &v) in edge_var.iter().enumerate() {
        var_edges[v as usize].push(e as u32);
    }
    for _ in 0..iters {
        let mut pp = vec![1.0f32; f.num_vars];
        let mut pn = vec![1.0f32; f.num_vars];
        for v in 0..f.num_vars {
            for &e in &var_edges[v] {
                if edge_neg[e as usize] == 0 {
                    pp[v] *= 1.0 - eta[e as usize];
                } else {
                    pn[v] *= 1.0 - eta[e as usize];
                }
            }
        }
        let mut max_delta = 0.0f32;
        for c in 0..f.clauses.len() {
            let (lo, hi) = (cl_ptr[c] as usize, cl_ptr[c + 1] as usize);
            for e in lo..hi {
                let mut eta_new = 1.0f32;
                for e2 in lo..hi {
                    if e2 == e {
                        continue;
                    }
                    let j = edge_var[e2] as usize;
                    let denom = (1.0 - eta[e2]).max(1e-9);
                    let (same, other) = if edge_neg[e2] == 0 {
                        (pp[j], pn[j])
                    } else {
                        (pn[j], pp[j])
                    };
                    let pi_u = (1.0 - same / denom) * other;
                    let pi_s = (1.0 - other) * (same / denom);
                    let pi_0 = (same / denom) * other;
                    let total = (pi_u + pi_s + pi_0).max(1e-9);
                    eta_new *= (pi_u / total).clamp(0.0, 1.0);
                }
                max_delta = max_delta.max((eta_new - eta[e]).abs());
                eta_next[e] = eta_new;
            }
        }
        std::mem::swap(&mut eta, &mut eta_next);
        if max_delta < TOL {
            break;
        }
    }
    eta
}

impl SurveyProp {
    fn solve(&self, dev: &mut Device, f: &Formula, mult: f64) -> Vec<f32> {
        let n_edges = f.num_edges();
        let mut cl_ptr = vec![0u32; f.clauses.len() + 1];
        for (c, cl) in f.clauses.iter().enumerate() {
            cl_ptr[c + 1] = cl_ptr[c] + cl.len() as u32;
        }
        let edge_var: Vec<u32> = f
            .clauses
            .iter()
            .flat_map(|cl| cl.iter().map(|&l| l.unsigned_abs() - 1))
            .collect();
        let edge_neg: Vec<u32> = f
            .clauses
            .iter()
            .flat_map(|cl| cl.iter().map(|&l| (l < 0) as u32))
            .collect();
        let mut var_lists: Vec<Vec<u32>> = vec![Vec::new(); f.num_vars];
        for (e, &v) in edge_var.iter().enumerate() {
            var_lists[v as usize].push(e as u32);
        }
        let mut var_ptr = vec![0u32; f.num_vars + 1];
        for v in 0..f.num_vars {
            var_ptr[v + 1] = var_ptr[v] + var_lists[v].len() as u32;
        }
        let var_edges: Vec<u32> = var_lists.concat();

        let b = SpBufs {
            cl_ptr: dev.alloc_from(&cl_ptr),
            edge_var: dev.alloc_from(&edge_var),
            edge_neg: dev.alloc_from(&edge_neg),
            var_ptr: dev.alloc_from(&var_ptr),
            var_edges: dev.alloc_from(&var_edges),
            eta_in: dev.alloc_init::<f32>(n_edges, 0.5),
            eta_out: dev.alloc_init::<f32>(n_edges, 0.5),
            prod_pos: dev.alloc::<f32>(f.num_vars),
            prod_neg: dev.alloc::<f32>(f.num_vars),
            max_delta: dev.alloc::<u32>(1),
            n_clauses: f.clauses.len(),
            n_vars: f.num_vars,
        };
        let opts = LaunchOpts {
            work_multiplier: mult,
        };
        let var_grid = (f.num_vars as u32).div_ceil(BLOCK);
        let cl_grid = (f.clauses.len() as u32).div_ceil(BLOCK);
        let mut eta_in = b.eta_in;
        let mut eta_out = b.eta_out;
        for _ in 0..MAX_ITERS {
            dev.fill(&b.max_delta, 0);
            let bufs = SpBufs {
                eta_in,
                eta_out,
                ..b
            };
            dev.launch_with(&VarProducts { b: &bufs }, var_grid, BLOCK, opts);
            dev.launch_with(&EdgeUpdate { b: &bufs }, cl_grid, BLOCK, opts);
            std::mem::swap(&mut eta_in, &mut eta_out);
            if dev.read_at(&b.max_delta, 0) < (TOL * 1e6) as u32 {
                break;
            }
        }
        dev.read(&eta_in)
    }
}

impl Benchmark for SurveyProp {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "nsp",
            name: "NSP",
            suite: Suite::LonestarGpu,
            kernels: 3,
            regular: false,
            description: "Survey propagation SAT heuristic on a factor graph",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: clauses-literals-literals/clause 16800-4000-3, 42k-10k-3,
        // 42k-10k-5.
        vec![
            InputSpec::new("16800-4000-3", 1680, 400, 3, 3_200.0),
            InputSpec::new("42k-10k-3", 4200, 1000, 3, 1_400.0),
            InputSpec::new("42k-10k-5", 4200, 1000, 5, 10_000.0),
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let f = random_ksat(input.n, input.m, input.aux, input.seed);
        let eta = self.solve(dev, &f, input.mult);
        assert!(eta.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
        let expect = host_sp(&f, MAX_ITERS);
        for (i, (a, b)) in eta.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-4, "eta[{i}]: {a} vs {b}");
        }
        let checksum: f64 = eta.iter().map(|&v| v as f64).sum();
        RunOutput {
            checksum,
            items: Some(ItemCounts {
                vertices: (input.n + input.m) as u64 * 10,
                edges: f.num_edges() as u64 * 10,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn device_matches_host_reference() {
        SurveyProp.run(&mut device(), &InputSpec::new("t", 160, 40, 3, 1.0));
    }

    #[test]
    fn surveys_converge_under_threshold_alpha() {
        // α = m/n = 3 is below the 3-SAT SP threshold: surveys settle.
        let mut dev = device();
        let f = random_ksat(300, 100, 3, 5);
        let eta = SurveyProp.solve(&mut dev, &f, 1.0);
        // Convergence: far fewer iterations than the cap.
        let iters = dev
            .stats()
            .iter()
            .filter(|l| l.kernel == "nsp_edge_update")
            .count();
        assert!(iters < MAX_ITERS, "iterations {iters}");
        assert!(eta.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn wider_clauses_mean_more_edge_work() {
        let mut d3 = device();
        SurveyProp.run(&mut d3, &InputSpec::new("k3", 160, 40, 3, 1.0));
        let mut d5 = device();
        SurveyProp.run(&mut d5, &InputSpec::new("k5", 160, 40, 5, 1.0));
        let w3 = d3.total_counters().flops() / d3.stats().len() as f64;
        let w5 = d5.total_counters().flops() / d5.stats().len() as f64;
        assert!(w5 > 1.5 * w3, "k5 {w5} vs k3 {w3}");
    }

    #[test]
    fn nsp_is_fp_heavy() {
        let mut dev = device();
        SurveyProp.run(&mut dev, &InputSpec::new("t", 160, 40, 3, 1.0));
        let c = dev.total_counters();
        assert!(
            c.flops() > c.lane_ops[4],
            "fp {} int {}",
            c.flops(),
            c.lane_ops[4]
        );
    }
}
