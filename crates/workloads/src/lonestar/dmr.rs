//! DMR — LonestarGPU Delaunay mesh refinement (simplified).
//!
//! The real benchmark retriangulates cavities around bad triangles until
//! no triangle has an angle below 30°. We keep the same computational
//! shape — a worklist of bad triangles, atomic allocation of new mesh
//! entities, data-dependent convergence — but simplify the refinement
//! operator to *longest-edge midpoint bisection* driven by an area bound,
//! which terminates provably and preserves total mesh area exactly (each
//! split halves a triangle's area). DESIGN.md records this substitution.
//!
//! Kernels: (1) quality check building the bad-triangle worklist with an
//! atomic cursor, (2) refinement splitting each bad triangle into two
//! (allocating points/triangles with atomic counters). Host loop until the
//! worklist drains.

use crate::bench::{BenchSpec, Benchmark, InputSpec, ItemCounts, RunOutput, Suite};
use crate::inputs::mesh::jittered_square;
use kepler_sim::{BlockCtx, DevBuffer, Device, Kernel, LaunchOpts};

const BLOCK: u32 = 128;

struct MeshBufs {
    px: DevBuffer<f32>,
    py: DevBuffer<f32>,
    /// Triangle vertex ids, 3 per triangle.
    tri: DevBuffer<u32>,
    num_tris: DevBuffer<u32>,
    num_pts: DevBuffer<u32>,
    worklist: DevBuffer<u32>,
    wl_size: DevBuffer<u32>,
    max_tris: usize,
}

/// Kernel 1: collect triangles whose area exceeds the bound.
struct QualityCheck<'a> {
    b: &'a MeshBufs,
    threshold2: f32,
    count: u32,
}
impl Kernel for QualityCheck<'_> {
    fn name(&self) -> &'static str {
        "dmr_quality_check"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        let thr = self.threshold2;
        let count = self.count;
        blk.for_each_thread(|t| {
            let i = t.gtid();
            if i >= count {
                return;
            }
            let ti = i as usize;
            let a = t.ld(&b.tri, 3 * ti) as usize;
            let c = t.ld(&b.tri, 3 * ti + 1) as usize;
            let d = t.ld(&b.tri, 3 * ti + 2) as usize;
            let (ax, ay) = (t.ld(&b.px, a), t.ld(&b.py, a));
            let (bx, by) = (t.ld(&b.px, c), t.ld(&b.py, c));
            let (cx, cy) = (t.ld(&b.px, d), t.ld(&b.py, d));
            let area2 = ((bx - ax) * (cy - ay) - (cx - ax) * (by - ay)).abs();
            t.fma32(4);
            t.fp32_add(4);
            if area2 > thr {
                let slot = t.atomic_add_u32(&b.wl_size, 0, 1);
                t.st(&b.worklist, slot as usize, i);
            }
        });
    }
}

/// Kernel 2: split each bad triangle at the midpoint of its longest edge.
struct Refine<'a> {
    b: &'a MeshBufs,
    wl_count: u32,
}
impl Kernel for Refine<'_> {
    fn name(&self) -> &'static str {
        "dmr_refine"
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let b = self.b;
        let wl_count = self.wl_count;
        blk.for_each_thread(|t| {
            let i = t.gtid();
            if i >= wl_count {
                return;
            }
            let ti = t.ld(&b.worklist, i as usize) as usize;
            let v = [
                t.ld(&b.tri, 3 * ti) as usize,
                t.ld(&b.tri, 3 * ti + 1) as usize,
                t.ld(&b.tri, 3 * ti + 2) as usize,
            ];
            let xs = [t.ld(&b.px, v[0]), t.ld(&b.px, v[1]), t.ld(&b.px, v[2])];
            let ys = [t.ld(&b.py, v[0]), t.ld(&b.py, v[1]), t.ld(&b.py, v[2])];
            // Longest edge (k, k+1).
            let mut best = 0usize;
            let mut best_len = -1.0f32;
            for k in 0..3 {
                let k2 = (k + 1) % 3;
                let dx = xs[k2] - xs[k];
                let dy = ys[k2] - ys[k];
                let l = dx * dx + dy * dy;
                t.fma32(2);
                t.fp32_add(2);
                if l > best_len {
                    best_len = l;
                    best = k;
                }
            }
            let k2 = (best + 1) % 3;
            let k3 = (best + 2) % 3;
            // New midpoint vertex.
            let p = t.atomic_add_u32(&b.num_pts, 0, 1) as usize;
            t.fp32_mul(2);
            t.fp32_add(2);
            t.st(&b.px, p, 0.5 * (xs[best] + xs[k2]));
            t.st(&b.py, p, 0.5 * (ys[best] + ys[k2]));
            // Triangle ti becomes (v[best], p, v[k3]); new triangle is
            // (p, v[k2], v[k3]).
            let nt = t.atomic_add_u32(&b.num_tris, 0, 1) as usize;
            assert!(nt < b.max_tris, "triangle pool exhausted");
            t.st(&b.tri, 3 * ti, v[best] as u32);
            t.st(&b.tri, 3 * ti + 1, p as u32);
            t.st(&b.tri, 3 * ti + 2, v[k3] as u32);
            t.st(&b.tri, 3 * nt, p as u32);
            t.st(&b.tri, 3 * nt + 1, v[k2] as u32);
            t.st(&b.tri, 3 * nt + 2, v[k3] as u32);
        });
    }
}

/// The DMR benchmark.
pub struct Dmr;

impl Dmr {
    fn refine(&self, dev: &mut Device, w: usize, h: usize, seed: u64, mult: f64) -> (usize, f64) {
        let mesh = jittered_square(w, h, seed);
        let initial_area = mesh.total_area();
        let n0 = mesh.num_tris();
        // Area bound: one third of the mean initial triangle area; splits
        // halve areas, so every triangle needs a bounded number of splits.
        let mean_area2 = (0..n0).map(|t| mesh.area2(t).abs() as f64).sum::<f64>() / n0 as f64;
        let threshold2 = (mean_area2 / 3.0) as f32;

        // Generously sized pools (area halving bounds growth).
        let max_tris = n0 * 16;
        let max_pts = mesh.px.len() * 16;
        let mut px = mesh.px.clone();
        let mut py = mesh.py.clone();
        px.resize(max_pts, 0.0);
        py.resize(max_pts, 0.0);
        let mut tri = vec![0u32; 3 * max_tris];
        for (i, t) in mesh.tris.iter().enumerate() {
            tri[3 * i] = t[0];
            tri[3 * i + 1] = t[1];
            tri[3 * i + 2] = t[2];
        }
        let b = MeshBufs {
            px: dev.alloc_from(&px),
            py: dev.alloc_from(&py),
            tri: dev.alloc_from(&tri),
            num_tris: dev.alloc_init(1, n0 as u32),
            num_pts: dev.alloc_init(1, mesh.px.len() as u32),
            worklist: dev.alloc::<u32>(max_tris),
            wl_size: dev.alloc::<u32>(1),
            max_tris,
        };
        let opts = LaunchOpts {
            work_multiplier: mult,
        };
        let mut rounds = 0;
        loop {
            let count = dev.read_at(&b.num_tris, 0);
            dev.fill(&b.wl_size, 0);
            dev.launch_with(
                &QualityCheck {
                    b: &b,
                    threshold2,
                    count,
                },
                count.div_ceil(BLOCK),
                BLOCK,
                opts,
            );
            let bad = dev.read_at(&b.wl_size, 0);
            if bad == 0 {
                break;
            }
            dev.launch_with(
                &Refine {
                    b: &b,
                    wl_count: bad,
                },
                bad.div_ceil(BLOCK),
                BLOCK,
                opts,
            );
            rounds += 1;
            assert!(rounds < 64, "refinement failed to converge");
        }
        // Validate: total area preserved, all triangles within bound.
        let final_tris = dev.read_at(&b.num_tris, 0) as usize;
        let tri_data = dev.read(&b.tri);
        let pxs = dev.read(&b.px);
        let pys = dev.read(&b.py);
        let mut total = 0.0f64;
        for t in 0..final_tris {
            let (a, c, d) = (
                tri_data[3 * t] as usize,
                tri_data[3 * t + 1] as usize,
                tri_data[3 * t + 2] as usize,
            );
            let area2 = ((pxs[c] - pxs[a]) * (pys[d] - pys[a])
                - (pxs[d] - pxs[a]) * (pys[c] - pys[a]))
                .abs();
            assert!(
                area2 <= threshold2 * 1.0001,
                "triangle {t} still above the area bound"
            );
            total += area2 as f64 / 2.0;
        }
        assert!(
            (total - initial_area).abs() < 1e-3 * initial_area,
            "mesh area not preserved: {total} vs {initial_area}"
        );
        (final_tris, total)
    }
}

impl Benchmark for Dmr {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            key: "dmr",
            name: "DMR",
            suite: Suite::LonestarGpu,
            kernels: 4,
            regular: false,
            description: "Guaranteed-quality mesh refinement (worklist-driven splitting)",
        }
    }

    fn inputs(&self) -> Vec<InputSpec> {
        // Paper: 250k, 1m and 5m triangle meshes.
        vec![
            InputSpec::new("250k mesh", 20, 20, 0, 436_000.0),
            InputSpec::new("1m mesh", 28, 28, 0, 355_000.0),
            InputSpec::new("5m mesh", 40, 40, 0, 171_000.0),
        ]
    }

    fn run(&self, dev: &mut Device, input: &InputSpec) -> RunOutput {
        let (tris, area) = self.refine(dev, input.n, input.m, input.seed, input.mult);
        let paper_tris = match input.name {
            "250k mesh" => 250_000,
            "1m mesh" => 1_000_000,
            _ => 5_000_000,
        };
        RunOutput {
            checksum: tris as f64 + area,
            items: Some(ItemCounts {
                vertices: paper_tris,
                edges: 3 * paper_tris,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_sim::{ClockConfig, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::k20c(ClockConfig::k20_default(), false))
    }

    #[test]
    fn refinement_terminates_and_preserves_area() {
        let mut dev = device();
        let (tris, area) = Dmr.refine(&mut dev, 8, 8, 1, 1.0);
        assert!(tris > 128, "triangles {tris}");
        assert!((area - 1.0).abs() < 1e-3, "area {area}");
    }

    #[test]
    fn refinement_grows_mesh_moderately() {
        let mut dev = device();
        let (tris, _) = Dmr.refine(&mut dev, 10, 10, 2, 1.0);
        // Area bound of mean/3: expect roughly 3-8x growth, not explosion.
        assert!((400..=2000).contains(&tris), "triangles {tris}");
    }

    #[test]
    fn workload_shrinks_over_rounds() {
        let mut dev = device();
        Dmr.refine(&mut dev, 10, 10, 3, 1.0);
        let refine_grids: Vec<u32> = dev
            .stats()
            .iter()
            .filter(|l| l.kernel == "dmr_refine")
            .map(|l| l.counters.blocks as u32)
            .collect();
        assert!(refine_grids.len() >= 2);
        // The last round touches far fewer triangles than the first.
        assert!(refine_grids.last().unwrap() <= refine_grids.first().unwrap());
    }

    #[test]
    fn dmr_run_is_deterministic_per_config() {
        let input = InputSpec::new("t", 8, 8, 0, 1.0);
        let a = Dmr.run(&mut device(), &input).checksum;
        let b = Dmr.run(&mut device(), &input).checksum;
        assert_eq!(a, b);
    }
}
