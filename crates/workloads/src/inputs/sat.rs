//! Random k-SAT formulas for survey propagation (NSP), matching the
//! paper's clauses–literals–literals-per-clause parameterization.

use super::util::rng;
use rand::Rng;

/// A CNF formula: `clauses[c]` lists signed literals; variable `v` appears
/// as `v+1` (positive) or `-(v+1)` (negated).
#[derive(Debug, Clone)]
pub struct Formula {
    pub num_vars: usize,
    pub clauses: Vec<Vec<i32>>,
}

impl Formula {
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    pub fn num_edges(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }
}

/// Random k-SAT: `m` clauses over `n` variables, `k` distinct literals per
/// clause with random polarity.
pub fn random_ksat(m: usize, n: usize, k: usize, seed: u64) -> Formula {
    assert!(k <= n, "clause width exceeds variable count");
    let mut r = rng(seed);
    let mut clauses = Vec::with_capacity(m);
    for _ in 0..m {
        let mut vars = Vec::with_capacity(k);
        while vars.len() < k {
            let v = r.gen_range(0..n) as i32;
            if !vars.iter().any(|&(x, _)| x == v) {
                vars.push((v, r.gen::<bool>()));
            }
        }
        clauses.push(
            vars.into_iter()
                .map(|(v, pos)| if pos { v + 1 } else { -(v + 1) })
                .collect(),
        );
    }
    Formula {
        num_vars: n,
        clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_shape() {
        let f = random_ksat(100, 40, 3, 1);
        assert_eq!(f.num_clauses(), 100);
        assert_eq!(f.num_vars, 40);
        assert_eq!(f.num_edges(), 300);
        for c in &f.clauses {
            assert_eq!(c.len(), 3);
            for &lit in c {
                assert!(lit != 0 && lit.unsigned_abs() <= 40);
            }
            // Distinct variables within a clause.
            let mut vars: Vec<u32> = c.iter().map(|l| l.unsigned_abs()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "clause width")]
    fn k_greater_than_n_rejected() {
        random_ksat(1, 2, 3, 0);
    }
}
