//! Graph inputs in CSR form, plus host reference algorithms.
//!
//! The paper's road maps (Great Lakes, Western USA, entire USA) are
//! replaced by synthetic *road networks*: near-planar grids with
//! perturbed connectivity. These keep the properties that drive the
//! paper's irregular-BFS findings — tiny average degree (~2.4 directed
//! edges/node for the USA map), enormous diameter, and good locality.
//! SHOC/Rodinia-style inputs use uniform random k-way graphs (low
//! diameter, no locality).

use super::util::rng;
use rand::Rng;

/// Compressed-sparse-row directed graph with edge weights.
#[derive(Debug, Clone)]
pub struct Csr {
    pub row_ptr: Vec<u32>,
    pub col: Vec<u32>,
    pub weight: Vec<u32>,
    pub n: usize,
}

impl Csr {
    pub fn num_edges(&self) -> usize {
        self.col.len()
    }

    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.row_ptr[v] as usize;
        let hi = self.row_ptr[v + 1] as usize;
        self.col[lo..hi]
            .iter()
            .copied()
            .zip(self.weight[lo..hi].iter().copied())
    }

    /// Build a CSR from an edge list (u, v, w) over `n` nodes.
    pub fn from_edges(n: usize, edges: &[(u32, u32, u32)]) -> Self {
        let mut deg = vec![0u32; n];
        for &(u, _, _) in edges {
            deg[u as usize] += 1;
        }
        let mut row_ptr = vec![0u32; n + 1];
        for i in 0..n {
            row_ptr[i + 1] = row_ptr[i] + deg[i];
        }
        let mut col = vec![0u32; edges.len()];
        let mut weight = vec![0u32; edges.len()];
        let mut cursor: Vec<u32> = row_ptr[..n].to_vec();
        for &(u, v, w) in edges {
            let c = cursor[u as usize] as usize;
            col[c] = v;
            weight[c] = w;
            cursor[u as usize] += 1;
        }
        Self {
            row_ptr,
            col,
            weight,
            n,
        }
    }
}

/// Synthetic road network: a `w x h` grid where each node connects to its
/// right and down neighbors (bidirectionally), a few edges are deleted, and
/// a few random "highway" shortcuts are added. Average directed degree
/// ~3.8, diameter O(w + h), strong locality — structurally like the DIMACS
/// road maps the paper uses.
pub fn road_network(w: usize, h: usize, seed: u64) -> Csr {
    let n = w * h;
    let mut r = rng(seed);
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(4 * n);
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            let u = idx(x, y);
            if x + 1 < w && r.gen::<f32>() > 0.06 {
                let v = idx(x + 1, y);
                let wgt = r.gen_range(1..100u32);
                edges.push((u, v, wgt));
                edges.push((v, u, wgt));
            }
            if y + 1 < h && r.gen::<f32>() > 0.06 {
                let v = idx(x, y + 1);
                let wgt = r.gen_range(1..100u32);
                edges.push((u, v, wgt));
                edges.push((v, u, wgt));
            }
        }
    }
    // Sparse long-range shortcuts (highways), ~0.5% of nodes.
    for _ in 0..n / 200 {
        let u = r.gen_range(0..n) as u32;
        let v = r.gen_range(0..n) as u32;
        if u != v {
            let wgt = r.gen_range(50..200u32);
            edges.push((u, v, wgt));
            edges.push((v, u, wgt));
        }
    }
    Csr::from_edges(n, &edges)
}

/// Uniform random k-way graph: every node gets `k` out-edges to uniformly
/// random targets (SHOC's BFS input). Tiny diameter, no locality.
pub fn random_kway(n: usize, k: usize, seed: u64) -> Csr {
    let mut r = rng(seed);
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(n * k);
    for u in 0..n as u32 {
        for _ in 0..k {
            let v = r.gen_range(0..n) as u32;
            edges.push((u, v, r.gen_range(1..10u32)));
        }
    }
    Csr::from_edges(n, &edges)
}

/// Host reference BFS levels from `src` (u32::MAX = unreachable).
pub fn host_bfs(g: &Csr, src: usize) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.n];
    level[src] = 0;
    let mut frontier = vec![src as u32];
    let mut next = Vec::new();
    let mut cur = 0u32;
    while !frontier.is_empty() {
        for &u in &frontier {
            for (v, _) in g.neighbors(u as usize) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = cur + 1;
                    next.push(v);
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
        cur += 1;
    }
    level
}

/// Host reference single-source shortest paths (Dijkstra).
pub fn host_sssp(g: &Csr, src: usize) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![u32::MAX; g.n];
    dist[src] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, src as u32)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u as usize) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Host reference minimum-spanning-forest weight (Kruskal). The graph is
/// interpreted as undirected: each (u,v) and (v,u) pair counts once.
pub fn host_msf_weight(g: &Csr) -> u64 {
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for u in 0..g.n {
        for (v, w) in g.neighbors(u) {
            if (u as u32) < v {
                edges.push((w, u as u32, v));
            }
        }
    }
    edges.sort_unstable();
    let mut parent: Vec<u32> = (0..g.n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    let mut total = 0u64;
    for (w, u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
            total += w as u64;
        }
    }
    total
}

/// BFS diameter estimate: the maximum finite level from `src`.
pub fn eccentricity(g: &Csr, src: usize) -> u32 {
    host_bfs(g, src)
        .iter()
        .filter(|&&l| l != u32::MAX)
        .copied()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_edges_roundtrip() {
        let g = Csr::from_edges(3, &[(0, 1, 5), (0, 2, 7), (1, 2, 1)]);
        assert_eq!(g.num_edges(), 3);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 5), (2, 7)]);
        assert_eq!(g.neighbors(2).count(), 0);
    }

    #[test]
    fn road_network_structure() {
        let g = road_network(32, 32, 1);
        assert_eq!(g.n, 1024);
        let avg_deg = g.num_edges() as f64 / g.n as f64;
        assert!(avg_deg > 2.5 && avg_deg < 4.5, "deg {avg_deg}");
        // High diameter: at least half the Manhattan width.
        let ecc = eccentricity(&g, 0);
        assert!(ecc >= 30, "eccentricity {ecc}");
    }

    #[test]
    fn random_kway_low_diameter() {
        let g = random_kway(2048, 8, 2);
        assert_eq!(g.num_edges(), 2048 * 8);
        let ecc = eccentricity(&g, 0);
        assert!(ecc <= 8, "eccentricity {ecc}");
    }

    #[test]
    fn host_bfs_simple_chain() {
        let g = Csr::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert_eq!(host_bfs(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(host_bfs(&g, 3), vec![u32::MAX, u32::MAX, u32::MAX, 0]);
    }

    #[test]
    fn host_sssp_prefers_cheap_path() {
        // 0->2 direct costs 10; through 1 costs 2+3=5.
        let g = Csr::from_edges(3, &[(0, 2, 10), (0, 1, 2), (1, 2, 3)]);
        assert_eq!(host_sssp(&g, 0), vec![0, 2, 5]);
    }

    #[test]
    fn host_msf_on_triangle() {
        let g = Csr::from_edges(
            3,
            &[
                (0, 1, 1),
                (1, 0, 1),
                (1, 2, 2),
                (2, 1, 2),
                (0, 2, 10),
                (2, 0, 10),
            ],
        );
        assert_eq!(host_msf_weight(&g), 3);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = road_network(16, 16, 9);
        let b = road_network(16, 16, 9);
        assert_eq!(a.col, b.col);
        let c = road_network(16, 16, 10);
        assert_ne!(a.col, c.col);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// CSR invariants hold for arbitrary road-network dimensions.
            #[test]
            fn prop_road_network_csr_well_formed(w in 2usize..24, h in 2usize..24, seed in 0u64..1000) {
                let g = road_network(w, h, seed);
                prop_assert_eq!(g.n, w * h);
                prop_assert_eq!(g.row_ptr.len(), g.n + 1);
                prop_assert_eq!(g.row_ptr[0], 0);
                prop_assert_eq!(g.row_ptr[g.n] as usize, g.num_edges());
                for win in g.row_ptr.windows(2) {
                    prop_assert!(win[0] <= win[1]);
                }
                for &c in &g.col {
                    prop_assert!((c as usize) < g.n);
                }
                // Undirected: every edge has its reverse.
                for u in 0..g.n {
                    for (v, _) in g.neighbors(u) {
                        prop_assert!(
                            g.neighbors(v as usize).any(|(w2, _)| w2 as usize == u),
                            "missing reverse of {}->{}", u, v
                        );
                    }
                }
            }

            /// Host BFS levels are a valid BFS labelling: neighbors differ
            /// by at most one level, and the source is 0.
            #[test]
            fn prop_host_bfs_is_valid_labelling(w in 2usize..16, h in 2usize..16, seed in 0u64..500) {
                let g = road_network(w, h, seed);
                let src = (w * h) / 2;
                let levels = host_bfs(&g, src);
                prop_assert_eq!(levels[src], 0);
                for u in 0..g.n {
                    if levels[u] == u32::MAX { continue; }
                    for (v, _) in g.neighbors(u) {
                        let lv = levels[v as usize];
                        prop_assert!(lv != u32::MAX);
                        prop_assert!(lv + 1 >= levels[u] || lv >= 1 && lv - 1 <= levels[u]);
                        prop_assert!(lv <= levels[u] + 1);
                    }
                }
            }

            /// Dijkstra distances satisfy the triangle inequality on edges.
            #[test]
            fn prop_host_sssp_relaxed(w in 2usize..14, h in 2usize..14, seed in 0u64..500) {
                let g = road_network(w, h, seed);
                let dist = host_sssp(&g, 0);
                for u in 0..g.n {
                    if dist[u] == u32::MAX { continue; }
                    for (v, wt) in g.neighbors(u) {
                        prop_assert!(dist[v as usize] <= dist[u].saturating_add(wt));
                    }
                }
            }

            /// The minimum spanning forest never weighs more than any
            /// spanning structure; in particular its weight is at most the
            /// total undirected edge weight and is monotone under edge
            /// removal... we check the cheap invariant: msf <= sum of all
            /// undirected weights.
            #[test]
            fn prop_msf_weight_bounded(w in 2usize..12, h in 2usize..12, seed in 0u64..200) {
                let g = road_network(w, h, seed);
                let total: u64 = (0..g.n)
                    .flat_map(|u| g.neighbors(u).map(move |(v, wt)| (u, v, wt)))
                    .filter(|(u, v, _)| (*u as u32) < *v)
                    .map(|(_, _, wt)| wt as u64)
                    .sum();
                prop_assert!(host_msf_weight(&g) <= total);
            }
        }
    }

    #[test]
    fn road_network_mostly_connected() {
        let g = road_network(48, 48, 3);
        let reached = host_bfs(&g, g.n / 2)
            .iter()
            .filter(|&&l| l != u32::MAX)
            .count();
        assert!(reached as f64 > 0.95 * g.n as f64);
    }
}
