//! 2-D triangle meshes for the mesh-refinement benchmark (DMR).

use super::util::rng;
use rand::Rng;

/// A 2-D triangle mesh: vertex coordinates plus triangles as vertex-index
/// triples.
#[derive(Debug, Clone)]
pub struct TriMesh {
    pub px: Vec<f32>,
    pub py: Vec<f32>,
    pub tris: Vec<[u32; 3]>,
}

impl TriMesh {
    pub fn num_tris(&self) -> usize {
        self.tris.len()
    }

    /// Signed double-area of triangle `t`.
    pub fn area2(&self, t: usize) -> f32 {
        let [a, b, c] = self.tris[t];
        let (ax, ay) = (self.px[a as usize], self.py[a as usize]);
        let (bx, by) = (self.px[b as usize], self.py[b as usize]);
        let (cx, cy) = (self.px[c as usize], self.py[c as usize]);
        (bx - ax) * (cy - ay) - (cx - ax) * (by - ay)
    }

    /// Total mesh area.
    pub fn total_area(&self) -> f64 {
        (0..self.num_tris())
            .map(|t| self.area2(t).abs() as f64 / 2.0)
            .sum()
    }
}

/// A jittered structured triangulation of the unit square with `w x h`
/// cells (2 triangles each). Jitter makes triangle qualities and areas
/// non-uniform, like a real unstructured mesh.
pub fn jittered_square(w: usize, h: usize, seed: u64) -> TriMesh {
    let mut r = rng(seed);
    let (nx, ny) = (w + 1, h + 1);
    let mut px = Vec::with_capacity(nx * ny);
    let mut py = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            let boundary = x == 0 || y == 0 || x == w || y == h;
            let jitter = if boundary {
                (0.0, 0.0)
            } else {
                (r.gen_range(-0.35..0.35), r.gen_range(-0.35..0.35))
            };
            px.push((x as f32 + jitter.0) / w as f32);
            py.push((y as f32 + jitter.1) / h as f32);
        }
    }
    let mut tris = Vec::with_capacity(2 * w * h);
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..h {
        for x in 0..w {
            let (a, b, c, d) = (idx(x, y), idx(x + 1, y), idx(x, y + 1), idx(x + 1, y + 1));
            tris.push([a, b, d]);
            tris.push([a, d, c]);
        }
    }
    TriMesh { px, py, tris }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_covers_unit_square() {
        let m = jittered_square(8, 8, 1);
        assert_eq!(m.num_tris(), 128);
        assert!((m.total_area() - 1.0).abs() < 1e-4, "{}", m.total_area());
    }

    #[test]
    fn triangles_consistently_oriented() {
        let m = jittered_square(6, 6, 2);
        for t in 0..m.num_tris() {
            assert!(m.area2(t) > 0.0, "triangle {t} degenerate or flipped");
        }
    }

    #[test]
    fn jitter_varies_areas() {
        let m = jittered_square(8, 8, 3);
        let areas: Vec<f32> = (0..m.num_tris()).map(|t| m.area2(t).abs()).collect();
        let min = areas.iter().cloned().fold(f32::MAX, f32::min);
        let max = areas.iter().cloned().fold(f32::MIN, f32::max);
        assert!(max / min > 1.5, "min {min} max {max}");
    }
}
