//! DNA sequence inputs for MUMmerGPU and Needleman-Wunsch.

use super::util::rng;
use rand::Rng;

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// A random DNA reference sequence of length `n`.
pub fn reference(n: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    (0..n).map(|_| BASES[r.gen_range(0..4usize)]).collect()
}

/// Query reads of length `len`, most of which are real substrings of
/// `reference` with a few point mutations (so alignments exist), the rest
/// random.
pub fn queries(reference: &[u8], count: usize, len: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed ^ 0xBEEF);
    let mut out = Vec::with_capacity(count * len);
    for _ in 0..count {
        if r.gen::<f32>() < 0.8 && reference.len() > len {
            let start = r.gen_range(0..reference.len() - len);
            for i in 0..len {
                let base = reference[start + i];
                if r.gen::<f32>() < 0.02 {
                    out.push(BASES[r.gen_range(0..4usize)]);
                } else {
                    out.push(base);
                }
            }
        } else {
            for _ in 0..len {
                out.push(BASES[r.gen_range(0..4usize)]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_dna() {
        let s = reference(1000, 1);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|b| BASES.contains(b)));
    }

    #[test]
    fn queries_mostly_match_reference() {
        let r = reference(10_000, 2);
        let q = queries(&r, 50, 25, 3);
        assert_eq!(q.len(), 50 * 25);
        // At least some queries should appear (near-)verbatim.
        let hay: &[u8] = &r;
        let mut exact = 0;
        for chunk in q.chunks(25) {
            if hay.windows(25).any(|w| w == chunk) {
                exact += 1;
            }
        }
        assert!(exact >= 10, "exact {exact}");
    }
}
