//! Point-set inputs: n-body initial conditions, molecular boxes,
//! astronomical distributions.

use super::util::rng;
use rand::Rng;

/// Plummer-like spherical distribution for n-body codes (BH, NB): dense
//  core, sparse halo — the mass distribution Barnes-Hut inputs use.
pub fn plummer(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut r = rng(seed);
    let (mut xs, mut ys, mut zs, mut ms) = (
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    );
    for _ in 0..n {
        // Radius from the Plummer cumulative mass profile.
        let m: f32 = r.gen_range(0.01..0.99);
        let rad = 1.0 / (m.powf(-2.0 / 3.0) - 1.0).sqrt();
        let theta = r.gen_range(0.0..std::f32::consts::PI);
        let phi = r.gen_range(0.0..2.0 * std::f32::consts::PI);
        xs.push(rad * theta.sin() * phi.cos());
        ys.push(rad * theta.sin() * phi.sin());
        zs.push(rad * theta.cos());
        ms.push(1.0 / n as f32);
    }
    (xs, ys, zs, ms)
}

/// Atoms on a jittered FCC-ish lattice in a periodic box (MD, CUTCP):
/// roughly uniform density like a water box.
pub fn lattice_atoms(n: usize, box_len: f32, seed: u64) -> Vec<[f32; 3]> {
    let mut r = rng(seed);
    let side = (n as f32).cbrt().ceil() as usize;
    let cell = box_len / side as f32;
    let mut out = Vec::with_capacity(n);
    'outer: for ix in 0..side {
        for iy in 0..side {
            for iz in 0..side {
                if out.len() >= n {
                    break 'outer;
                }
                let mut jitter = || -> f32 { r.gen_range(-0.25..0.25) };
                out.push([
                    (ix as f32 + 0.5 + jitter()) * cell,
                    (iy as f32 + 0.5 + jitter()) * cell,
                    (iz as f32 + 0.5 + jitter()) * cell,
                ]);
            }
        }
    }
    out
}

/// Angular sky positions for TPACF: unit vectors with mild clustering
/// (a fraction of points is drawn near "galaxy cluster" centers).
pub fn sky_points(n: usize, seed: u64) -> Vec<[f32; 3]> {
    let mut r = rng(seed);
    let n_clusters = 16.max(n / 256);
    let centers: Vec<[f32; 3]> = (0..n_clusters).map(|_| random_unit(&mut r)).collect();
    (0..n)
        .map(|_| {
            if r.gen::<f32>() < 0.4 {
                let c = centers[r.gen_range(0..n_clusters)];
                let jitter = random_unit(&mut r);
                normalize([
                    c[0] + 0.1 * jitter[0],
                    c[1] + 0.1 * jitter[1],
                    c[2] + 0.1 * jitter[2],
                ])
            } else {
                random_unit(&mut r)
            }
        })
        .collect()
}

fn random_unit(r: &mut impl Rng) -> [f32; 3] {
    loop {
        let v = [
            r.gen_range(-1.0f32..1.0),
            r.gen_range(-1.0f32..1.0),
            r.gen_range(-1.0f32..1.0),
        ];
        let len2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
        if len2 > 1e-4 && len2 <= 1.0 {
            return normalize(v);
        }
    }
}

fn normalize(v: [f32; 3]) -> [f32; 3] {
    let len = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    [v[0] / len, v[1] / len, v[2] / len]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plummer_centrally_concentrated() {
        let (xs, ys, zs, ms) = plummer(2000, 1);
        assert_eq!(xs.len(), 2000);
        let radii: Vec<f32> = xs
            .iter()
            .zip(&ys)
            .zip(&zs)
            .map(|((x, y), z)| (x * x + y * y + z * z).sqrt())
            .collect();
        let inner = radii.iter().filter(|&&r| r < 1.0).count();
        assert!(inner > 500, "inner {inner}");
        let total_mass: f32 = ms.iter().sum();
        assert!((total_mass - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lattice_atoms_fill_box() {
        let atoms = lattice_atoms(1000, 10.0, 2);
        assert_eq!(atoms.len(), 1000);
        for a in &atoms {
            for &c in a {
                assert!(c > -1.0 && c < 11.0);
            }
        }
    }

    #[test]
    fn sky_points_are_unit_vectors() {
        for p in sky_points(500, 3) {
            let len = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            assert!((len - 1.0).abs() < 1e-4);
        }
    }
}
