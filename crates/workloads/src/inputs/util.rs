//! Small shared helpers for input generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a generator.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x00C0_FFEE)
}

/// `n` uniform f32 values in `[lo, hi)`.
pub fn f32_vec(n: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// `n` uniform u32 values in `[0, hi)`.
pub fn u32_vec(n: usize, hi: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..hi)).collect()
}

/// `n` points uniform in the unit cube, as (x, y, z) triples.
pub fn points3d(n: usize, seed: u64) -> Vec<[f32; 3]> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| [r.gen::<f32>(), r.gen::<f32>(), r.gen::<f32>()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(f32_vec(8, 0.0, 1.0, 7), f32_vec(8, 0.0, 1.0, 7));
        assert_ne!(f32_vec(8, 0.0, 1.0, 7), f32_vec(8, 0.0, 1.0, 8));
    }

    #[test]
    fn ranges_respected() {
        for v in f32_vec(100, 2.0, 3.0, 1) {
            assert!((2.0..3.0).contains(&v));
        }
        for v in u32_vec(100, 10, 1) {
            assert!(v < 10);
        }
    }

    #[test]
    fn points_in_unit_cube() {
        for p in points3d(50, 3) {
            for c in p {
                assert!((0.0..1.0).contains(&c));
            }
        }
    }
}
