//! Synthetic input generators replacing the paper's data sets (road maps,
//! biomolecular boxes, MPEG clips, points-to constraint files, ...). Each
//! generator preserves the structural properties the paper's analysis
//! depends on — degree distribution, diameter, locality, skew.

pub mod graphs;
pub mod mesh;
pub mod points;
pub mod sat;
pub mod sequences;
pub mod util;
