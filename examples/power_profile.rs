//! Render the paper's Figure 1 — a power profile with idle, ramp,
//! active plateau, and the driver's tail — for any program.
//!
//! ```text
//! cargo run --release --example power_profile [program-key]
//! ```

use gpgpu_char::study::figures::power_profile;
use gpgpu_char::study::report::render_fig1;

fn main() {
    let key = std::env::args().nth(1).unwrap_or_else(|| "nb".to_string());
    print!("{}", render_fig1(&power_profile(&key)));
}
