//! Quickstart: run one benchmark under two GPU configurations and print
//! what the paper's measurement pipeline reports.
//!
//! ```text
//! cargo run --release --example quickstart [program-key]
//! ```

use gpgpu_char::bench_suites::registry;
use gpgpu_char::study::{measure_median3, GpuConfigKind};

fn main() {
    let key = std::env::args().nth(1).unwrap_or_else(|| "nb".to_string());
    let bench = registry::by_key(&key).unwrap_or_else(|| {
        eprintln!("unknown program '{key}'; try one of:");
        for b in registry::all() {
            eprintln!("  {:12} {}", b.spec().key, b.spec().description);
        }
        std::process::exit(1);
    });
    let input = &bench.inputs()[0];
    println!(
        "{} ({}) on input '{}':",
        bench.spec().name,
        bench.spec().description,
        input.name
    );
    for kind in [GpuConfigKind::Default, GpuConfigKind::C614] {
        match measure_median3(bench.as_ref(), input, kind, 0) {
            Ok(m) => println!(
                "  {:8}  active runtime {:7.2} s   energy {:8.1} J   avg power {:6.1} W",
                kind.name(),
                m.reading.active_runtime_s,
                m.reading.energy_j,
                m.reading.avg_power_w
            ),
            Err(e) => println!("  {:8}  unmeasurable: {e}", kind.name()),
        }
    }
}
