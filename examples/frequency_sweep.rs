//! Sweep one program across all six K20c clock settings (the paper
//! evaluates three of them) plus the paper's cross-GPU check: the same
//! workload on K20c, K20x and K40 boards should show the same shape after
//! scaling absolute numbers.

use gpgpu_char::bench_suites::registry;
use gpgpu_char::power::{K20Power, PowerSensor};
use gpgpu_char::sim::{ClockConfig, Device, DeviceConfig};

fn measure(cfg: DeviceConfig, key: &str) -> Option<(f64, f64, f64)> {
    let b = registry::by_key(key).unwrap();
    let input = &b.inputs()[0];
    let mut cfg = cfg;
    cfg.jitter_seed = 5;
    let mut dev = Device::new(cfg);
    b.run(&mut dev, input);
    let (trace, _) = dev.finish();
    let samples = PowerSensor::default().sample(&trace, 5);
    let r = K20Power::default().analyze(&samples).ok()?;
    Some((r.active_runtime_s, r.energy_j, r.avg_power_w))
}

fn main() {
    let key = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sten".to_string());
    println!("{key} across all six K20c clock settings:");
    for clocks in ClockConfig::k20_all_settings() {
        let label = format!("{:.0}/{:.0}", clocks.core_mhz, clocks.mem_mhz);
        match measure(DeviceConfig::k20c(clocks, false), &key) {
            Some((t, e, p)) => {
                println!("  {label:>9} MHz   t={t:7.2}s  E={e:8.1}J  P={p:6.1}W")
            }
            None => println!("  {label:>9} MHz   unmeasurable (insufficient power samples)"),
        }
    }
    println!();
    println!("{key} across boards (same shape, scaled absolutes — paper §IV.B):");
    for (name, cfg) in [
        ("K20c", DeviceConfig::default()),
        ("K20x", DeviceConfig::k20x(false)),
        ("K40", DeviceConfig::k40(false)),
    ] {
        match measure(cfg, &key) {
            Some((t, e, p)) => println!("  {name:>5}   t={t:7.2}s  E={e:8.1}J  P={p:6.1}W"),
            None => println!("  {name:>5}   unmeasurable"),
        }
    }
}
