//! Ablations of the simulator's two distinguishing model features, showing
//! each one is load-bearing for a paper finding:
//!
//! 1. **Clock-seeded block interleaving** — without it, irregular codes
//!    behave identically at every frequency (no §V.A.1 wobble).
//! 2. **Divergence energy** (idle lanes burn fetch/decode power) — without
//!    it, irregular codes lose their elevated power draw.

use gpgpu_char::bench_suites::registry;
use gpgpu_char::power::{K20Power, PowerSensor};
use gpgpu_char::sim::Device;
use gpgpu_char::study::GpuConfigKind;

fn run(key: &str, kind: GpuConfigKind, shuffle: bool, idle_lane: bool) -> (usize, f64, f64) {
    let b = registry::by_key(key).unwrap();
    let input = &b.inputs()[0];
    let mut cfg = kind.device_config();
    cfg.jitter_seed = 11;
    cfg.interleave_shuffle = shuffle;
    if !idle_lane {
        cfg.power.e_idle_lane = 0.0;
    }
    let mut dev = Device::new(cfg);
    b.run(&mut dev, input);
    let launches = dev.stats().len();
    let work = dev.total_counters().useful_bytes;
    let (trace, _) = dev.finish();
    let samples = PowerSensor::default().sample(&trace, 11);
    let power = K20Power::default()
        .analyze(&samples)
        .map(|r| r.avg_power_w)
        .unwrap_or(0.0);
    (launches, work, power)
}

fn main() {
    println!("Ablation 1: clock-seeded interleaving (sssp-wln trajectory across configs)");
    for shuffle in [true, false] {
        let a = run("sssp-wln", GpuConfigKind::Default, shuffle, true);
        let b = run("sssp-wln", GpuConfigKind::C324, shuffle, true);
        println!(
            "  shuffle={shuffle:5}  default: {} passes / {:.3e} bytes   324: {} passes / {:.3e} bytes   {}",
            a.0,
            a.1,
            b.0,
            b.1,
            if a.1 != b.1 { "-> trajectories DIVERGE (irregular wobble)" } else { "-> identical (wobble lost)" }
        );
    }
    println!();
    println!("Ablation 2: divergence energy (power of an irregular vs regular code)");
    for idle_lane in [true, false] {
        let pta = run("pta", GpuConfigKind::Default, true, idle_lane);
        let sten = run("sten", GpuConfigKind::Default, true, idle_lane);
        println!(
            "  e_idle_lane={}  PTA {:.1} W   STEN {:.1} W",
            if idle_lane { "on " } else { "off" },
            pta.2,
            sten.2
        );
    }
}
