//! ECC study (the paper's §V.A.3): compare a memory-bound and a
//! compute-bound program with ECC on and off — ECC's cost is entirely
//! dependent on main-memory accesses.

use gpgpu_char::bench_suites::registry;
use gpgpu_char::study::{measure_median3, GpuConfigKind};

fn main() {
    for key in ["sten", "lbm", "lbfs", "mriq", "nb"] {
        let bench = registry::by_key(key).unwrap();
        let input = &bench.inputs()[0];
        let base = measure_median3(bench.as_ref(), input, GpuConfigKind::Default, 0).unwrap();
        let ecc = measure_median3(bench.as_ref(), input, GpuConfigKind::Ecc, 0).unwrap();
        println!(
            "{:6} {:26} ECC/default: time {:4.2}x  energy {:4.2}x  power {:4.2}x",
            bench.spec().name,
            input.name,
            ecc.reading.active_runtime_s / base.reading.active_runtime_s,
            ecc.reading.energy_j / base.reading.energy_j,
            ecc.reading.avg_power_w / base.reading.avg_power_w,
        );
    }
}
