//! DVFS sweep: one program across all four of the paper's configurations,
//! demonstrating the central finding — frequency changes move runtime,
//! energy, and power by *different* amounts.
//!
//! ```text
//! cargo run --release --example dvfs_sweep [program-key]
//! ```

use gpgpu_char::bench_suites::registry;
use gpgpu_char::study::{measure_median3, GpuConfigKind};

fn main() {
    let key = std::env::args().nth(1).unwrap_or_else(|| "lbm".to_string());
    let bench = registry::by_key(&key).expect("unknown program key");
    let input = &bench.inputs()[0];
    println!(
        "{} / '{}' across all four configurations (ratios vs default):",
        bench.spec().name,
        input.name
    );
    let base = measure_median3(bench.as_ref(), input, GpuConfigKind::Default, 0)
        .expect("default config must be measurable");
    println!(
        "  {:8}  t={:7.2}s  E={:8.1}J  P={:6.1}W",
        "default", base.reading.active_runtime_s, base.reading.energy_j, base.reading.avg_power_w
    );
    for kind in [GpuConfigKind::C614, GpuConfigKind::C324, GpuConfigKind::Ecc] {
        match measure_median3(bench.as_ref(), input, kind, 0) {
            Ok(m) => println!(
                "  {:8}  t={:7.2}s ({:4.2}x)  E={:8.1}J ({:4.2}x)  P={:6.1}W ({:4.2}x)",
                kind.name(),
                m.reading.active_runtime_s,
                m.reading.active_runtime_s / base.reading.active_runtime_s,
                m.reading.energy_j,
                m.reading.energy_j / base.reading.energy_j,
                m.reading.avg_power_w,
                m.reading.avg_power_w / base.reading.avg_power_w,
            ),
            Err(e) => println!(
                "  {:8}  unmeasurable: {e} (the paper hit the same wall at 324 MHz)",
                kind.name()
            ),
        }
    }
}
