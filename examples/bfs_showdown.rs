//! BFS showdown: the paper's Table 3 + Table 4 story in one binary — five
//! implementations of breadth-first search with very different energy,
//! power, and runtime behaviour on the same road network.

use gpgpu_char::bench_suites::registry;
use gpgpu_char::study::{measure_median3, GpuConfigKind};

fn main() {
    println!("BFS implementations on the largest road map (default config):");
    let keys = [
        "lbfs",
        "lbfs-atomic",
        "lbfs-wla",
        "lbfs-wlw",
        "lbfs-wlc",
        "pbfs",
        "rbfs",
        "sbfs",
    ];
    let mut base_time = None;
    for key in keys {
        let bench = registry::by_key(key).unwrap();
        let input = bench.inputs().last().unwrap().clone();
        match measure_median3(bench.as_ref(), &input, GpuConfigKind::Default, 0) {
            Ok(m) => {
                let t = m.reading.active_runtime_s;
                if key == "lbfs" {
                    base_time = Some(t);
                }
                let rel = base_time.map(|b| t / b).unwrap_or(1.0);
                println!(
                    "  {:12} t={:7.2}s ({:5.2}x vs L-BFS default)  E={:8.1}J  P={:6.1}W",
                    key, t, rel, m.reading.energy_j, m.reading.avg_power_w
                );
            }
            Err(e) => println!(
                "  {:12} unmeasurable: {e} — exactly why the paper could not report this variant",
                key
            ),
        }
    }
}
