//! Input scaling (the paper's Figure 5 mechanism): how power, energy, and
//! runtime respond as one program's input grows.

use gpgpu_char::bench_suites::registry;
use gpgpu_char::study::{measure_median3, GpuConfigKind};

fn main() {
    let key = std::env::args().nth(1).unwrap_or_else(|| "nb".to_string());
    let bench = registry::by_key(&key).expect("unknown program key");
    println!("{} across its inputs (default config):", bench.spec().name);
    for input in bench.inputs() {
        match measure_median3(bench.as_ref(), &input, GpuConfigKind::Default, 0) {
            Ok(m) => println!(
                "  {:28} t={:7.2}s  E={:8.1}J  P={:6.1}W",
                input.name, m.reading.active_runtime_s, m.reading.energy_j, m.reading.avg_power_w
            ),
            Err(e) => println!("  {:28} unmeasurable: {e}", input.name),
        }
    }
}
